//! One workload spec, any engine — the shared scenario driver behind
//! the Fig 10 a–c experiments and the declarative experiment pipeline.
//!
//! A [`Scenario`] expands deterministically (from its seed) into a list
//! of [`FlowSpec`]s — *who sends how many bytes to whom, starting when* —
//! and the same list can be offered to any [`FlowEngine`] through one
//! generic entry point, [`Scenario::run`]:
//!
//! * the cell-accurate [`FabricEngine`](stardust_fabric::FabricEngine)
//!   (finite flows with **no per-flow transport machinery**, paced
//!   purely by the fabric's credit scheduler — the paper's central
//!   claim under test), sequential or sharded;
//! * the §6.3 fat-tree transport simulator under any of its transports
//!   (TCP, DCTCP, MPTCP, DCQCN, or the htsim-style Stardust model),
//!   via [`TransportFlowEngine`](crate::TransportFlowEngine).
//!
//! Every engine returns the engine-agnostic [`FlowStats`] table from
//! `stardust-sim`, so FCT percentiles print side by side from one spec.
//! [`Scenario::run_with_failures`] additionally threads a
//! [`FailureSchedule`] of timed link fail/restore events through the
//! run — Appendix-E-style churn against finite-flow FCT workloads.

use crate::engine::{FailureSchedule, FlowEngine};
use crate::flows::FlowSizeDist;
use crate::patterns::{all_to_all_pairs, incast_sources, permutation};
use stardust_sim::{DetRng, FlowStats, SimDuration, SimTime};

/// One finite flow of a scenario: `bytes` from `src` to `dst`, offered at
/// `start`. Node indices are engine-relative (hosts for the transport
/// simulator, Fabric Adapters for the fabric engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Offered-to-the-network time.
    pub start: SimTime,
}

/// The communication patterns of the paper's headline evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Fig 10(a): a random derangement — every node sends one
    /// `flow_bytes` flow to its partner at t = 0, fully loading the
    /// network. Per-flow goodput = bytes / FCT.
    Permutation {
        /// Bytes per flow.
        flow_bytes: u64,
    },
    /// Fig 10(c): `backends` distinct sources all answer frontend node 0
    /// with a `response_bytes` response at t = 0. First vs last FCT
    /// measures both performance and fairness.
    Incast {
        /// Number of responding backends (clamped to the node count − 1).
        backends: usize,
        /// Response size in bytes.
        response_bytes: u64,
    },
    /// Fig 10(b): `n_flows` flows drawn from a heavy-tailed size
    /// distribution over uniformly random (src ≠ dst) pairs, arriving as
    /// a Poisson process.
    Mix {
        /// Flow-size distribution (e.g. [`FlowSizeDist::fb_web`]).
        dist: FlowSizeDist,
        /// Number of flows to offer.
        n_flows: usize,
        /// Mean inter-arrival gap **per node**: the network-wide Poisson
        /// process uses `node_gap / n_nodes`, so the offered per-node
        /// load (`dist.mean() × 8 / node_gap`) is invariant across engine
        /// populations — a 16-FA fabric and a 128-host fat-tree see the
        /// same load per NIC from one spec.
        node_gap: SimDuration,
    },
    /// All-to-all shuffle (map-reduce style): every ordered (src, dst)
    /// pair carries one `bytes_per_pair` transfer, so each node sends —
    /// and receives — exactly `n_nodes − 1` flows. Transfers start as a
    /// Poisson process in a seed-shuffled pair order, with the same
    /// per-node load normalization as [`ScenarioKind::Mix`]: the
    /// network-wide gap is `node_gap / n_nodes`, keeping the offered
    /// per-NIC load invariant across engine populations.
    Shuffle {
        /// Bytes for each src→dst pair transfer.
        bytes_per_pair: u64,
        /// Mean per-node inter-arrival gap of the Poisson start process.
        node_gap: SimDuration,
    },
}

/// A named, seeded workload scenario (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (labels experiment output and salts the flow-list
    /// RNG). Owned, so scenarios parsed from experiment specs at runtime
    /// can carry their own names.
    pub name: String,
    /// Master seed; the flow list is a pure function of `(kind, seed,
    /// n_nodes)`.
    pub seed: u64,
    /// The communication pattern.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Expand into the flow list for an `n_nodes`-node network. Pure and
    /// deterministic: every engine is offered byte-identical workloads.
    pub fn flows(&self, n_nodes: usize) -> Vec<FlowSpec> {
        assert!(n_nodes >= 2, "a scenario needs at least two nodes");
        let mut rng = DetRng::from_label(self.seed, &self.name);
        match &self.kind {
            ScenarioKind::Permutation { flow_bytes } => {
                let perm = permutation(n_nodes, &mut rng);
                (0..n_nodes as u32)
                    .map(|src| FlowSpec {
                        src,
                        dst: perm[src as usize],
                        bytes: *flow_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect()
            }
            ScenarioKind::Incast {
                backends,
                response_bytes,
            } => {
                let frontend = 0u32;
                let n_backends = (*backends).min(n_nodes - 1);
                incast_sources(n_nodes, frontend, n_backends, &mut rng)
                    .into_iter()
                    .map(|src| FlowSpec {
                        src,
                        dst: frontend,
                        bytes: *response_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect()
            }
            ScenarioKind::Mix {
                dist,
                n_flows,
                node_gap,
            } => {
                let net_gap = node_gap.as_secs_f64() / n_nodes as f64;
                let mut t = SimTime::ZERO;
                (0..*n_flows)
                    .map(|_| {
                        t += SimDuration::from_secs_f64(rng.exponential(net_gap));
                        let src = rng.below(n_nodes as u64) as u32;
                        let mut dst = rng.below(n_nodes as u64) as u32;
                        while dst == src {
                            dst = rng.below(n_nodes as u64) as u32;
                        }
                        FlowSpec {
                            src,
                            dst,
                            bytes: dist.sample(&mut rng).max(1),
                            start: t,
                        }
                    })
                    .collect()
            }
            ScenarioKind::Shuffle {
                bytes_per_pair,
                node_gap,
            } => {
                let mut pairs = all_to_all_pairs(n_nodes);
                rng.shuffle(&mut pairs);
                let net_gap = node_gap.as_secs_f64() / n_nodes as f64;
                let mut t = SimTime::ZERO;
                pairs
                    .into_iter()
                    .map(|(src, dst)| {
                        t += SimDuration::from_secs_f64(rng.exponential(net_gap));
                        FlowSpec {
                            src,
                            dst,
                            bytes: (*bytes_per_pair).max(1),
                            start: t,
                        }
                    })
                    .collect()
            }
        }
    }

    /// Offer the scenario to any [`FlowEngine`] — the cell-accurate
    /// fabric (sequential or sharded), the fat-tree transport simulator
    /// behind [`TransportFlowEngine`](crate::TransportFlowEngine), or
    /// anything else implementing the trait — run to `horizon` and
    /// return the FCT table of the scenario's own flows.
    pub fn run(&self, engine: &mut impl FlowEngine, horizon: SimTime) -> FlowStats {
        self.run_with_failures(engine, &FailureSchedule::default(), horizon)
    }

    /// As [`Scenario::run`], threading a [`FailureSchedule`] of timed
    /// link fail/restore events through the run: the engine runs to each
    /// event's time, the event is applied (engines without link state
    /// skip it), and the run continues to `horizon`.
    pub fn run_with_failures(
        &self,
        engine: &mut impl FlowEngine,
        failures: &FailureSchedule,
        horizon: SimTime,
    ) -> FlowStats {
        engine.offer(&self.flows(engine.num_nodes()));
        failures.drive(engine, horizon);
        engine.flow_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_fabric::{FabricConfig, FabricEngine};
    use stardust_topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
    use stardust_transport::{Protocol, TransportSim};

    fn web_mix() -> Scenario {
        Scenario {
            name: "test-web-mix".into(),
            seed: 7,
            kind: ScenarioKind::Mix {
                dist: FlowSizeDist::fb_web(),
                n_flows: 50,
                node_gap: SimDuration::from_micros(320),
            },
        }
    }

    #[test]
    fn flow_lists_are_deterministic_and_valid() {
        for scn in [
            Scenario {
                name: "perm".into(),
                seed: 3,
                kind: ScenarioKind::Permutation { flow_bytes: 1_000 },
            },
            Scenario {
                name: "incast".into(),
                seed: 3,
                kind: ScenarioKind::Incast {
                    backends: 10,
                    response_bytes: 450_000,
                },
            },
            Scenario {
                name: "shuffle".into(),
                seed: 3,
                kind: ScenarioKind::Shuffle {
                    bytes_per_pair: 10_000,
                    node_gap: SimDuration::from_micros(100),
                },
            },
            web_mix(),
        ] {
            let a = scn.flows(16);
            let b = scn.flows(16);
            assert_eq!(a, b, "{}: expansion must be pure", scn.name);
            assert!(!a.is_empty());
            assert!(a.iter().all(|f| f.src != f.dst && f.bytes > 0));
            assert!(a.iter().all(|f| f.src < 16 && f.dst < 16));
        }
    }

    #[test]
    fn incast_backends_clamped_to_population() {
        let scn = Scenario {
            name: "incast-clamp".into(),
            seed: 1,
            kind: ScenarioKind::Incast {
                backends: 1_000,
                response_bytes: 1_000,
            },
        };
        let flows = scn.flows(8);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.dst == 0 && f.src != 0));
    }

    #[test]
    fn mix_arrivals_are_increasing_poisson() {
        let flows = web_mix().flows(16);
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.last().unwrap().start > SimTime::ZERO);
    }

    #[test]
    fn shuffle_covers_every_ordered_pair_exactly_once() {
        let n = 12usize;
        let scn = Scenario {
            name: "shuffle-cover".into(),
            seed: 9,
            kind: ScenarioKind::Shuffle {
                bytes_per_pair: 4_096,
                node_gap: SimDuration::from_micros(50),
            },
        };
        let flows = scn.flows(n);
        assert_eq!(flows.len(), n * (n - 1));
        // Every ordered pair appears exactly once…
        let mut pairs: Vec<(u32, u32)> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), n * (n - 1));
        // …so per-node load is normalized: each node sends and receives
        // exactly n−1 flows of equal size (the Mix-style invariant).
        for node in 0..n as u32 {
            assert_eq!(flows.iter().filter(|f| f.src == node).count(), n - 1);
            assert_eq!(flows.iter().filter(|f| f.dst == node).count(), n - 1);
        }
        assert!(flows.iter().all(|f| f.bytes == 4_096));
        // Poisson starts: non-decreasing, strictly past zero by the end.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.last().unwrap().start > SimTime::ZERO);
    }

    #[test]
    fn shuffle_order_is_seeded() {
        let kind = ScenarioKind::Shuffle {
            bytes_per_pair: 1_000,
            node_gap: SimDuration::from_micros(50),
        };
        let a = Scenario {
            name: "shuffle-seed".into(),
            seed: 1,
            kind: kind.clone(),
        }
        .flows(8);
        let b = Scenario {
            name: "shuffle-seed".into(),
            seed: 2,
            kind,
        }
        .flows(8);
        assert_ne!(a, b, "different seeds must shuffle the pair order");
    }

    #[test]
    fn one_spec_drives_both_engines() {
        let scn = web_mix();
        // Fabric side.
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let cfg = FabricConfig {
            host_ports: 1,
            host_port_bps: stardust_sim::units::gbps(40),
            ..FabricConfig::default()
        };
        let mut e = FabricEngine::new(tt.topo, cfg);
        let fab = scn.run(&mut e, SimTime::from_millis(20));
        assert_eq!(fab.len(), 50);
        assert_eq!(fab.completed(), 50, "lossless fabric must finish all");
        // Transport side, same spec, through the protocol wrapper.
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        let sim = TransportSim::new(ft, stardust_transport::TransportConfig::default());
        let mut wrapped = crate::TransportFlowEngine::new(sim, Protocol::Stardust);
        let tra = scn.run(&mut wrapped, SimTime::from_millis(100));
        assert_eq!(tra.len(), 50);
        assert!(tra.completed() > 0);
        // Both tables carry real FCTs.
        assert!(fab.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
        assert!(tra.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn fabric_scenario_runs_are_bit_identical() {
        let run = || {
            let scn = web_mix();
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut e = FabricEngine::new(tt.topo, FabricConfig::default());
            scn.run(&mut e, SimTime::from_millis(20))
        };
        assert_eq!(run(), run());
    }
}
