//! One workload spec, two engines — the shared scenario driver behind
//! the Fig 10 a–c experiments.
//!
//! A [`Scenario`] expands deterministically (from its seed) into a list
//! of [`FlowSpec`]s — *who sends how many bytes to whom, starting when* —
//! and the same list can be offered to either simulator:
//!
//! * [`Scenario::run_fabric`] drives the cell-accurate
//!   [`FabricEngine`] through [`FabricEngine::add_message`]: finite flows
//!   with **no per-flow transport machinery**, paced purely by the
//!   fabric's credit scheduler — the paper's central claim under test.
//! * [`Scenario::run_transport`] drives the §6.3 fat-tree
//!   [`TransportSim`] under any of its transports (TCP, DCTCP, MPTCP,
//!   DCQCN, or the htsim-style Stardust model).
//!
//! Both return the engine-agnostic [`FlowStats`] table from
//! `stardust-sim`, so FCT percentiles print side by side from one spec.

use crate::flows::FlowSizeDist;
use crate::patterns::{incast_sources, permutation};
use stardust_fabric::{FabricEngine, ShardedFabricEngine};
use stardust_sim::{CoreKind, DetRng, FlowStats, SimDuration, SimTime};
use stardust_transport::{FlowId, Protocol, TransportSim};

/// One finite flow of a scenario: `bytes` from `src` to `dst`, offered at
/// `start`. Node indices are engine-relative (hosts for the transport
/// simulator, Fabric Adapters for the fabric engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Offered-to-the-network time.
    pub start: SimTime,
}

/// The communication patterns of the paper's headline evaluation.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// Fig 10(a): a random derangement — every node sends one
    /// `flow_bytes` flow to its partner at t = 0, fully loading the
    /// network. Per-flow goodput = bytes / FCT.
    Permutation {
        /// Bytes per flow.
        flow_bytes: u64,
    },
    /// Fig 10(c): `backends` distinct sources all answer frontend node 0
    /// with a `response_bytes` response at t = 0. First vs last FCT
    /// measures both performance and fairness.
    Incast {
        /// Number of responding backends (clamped to the node count − 1).
        backends: usize,
        /// Response size in bytes.
        response_bytes: u64,
    },
    /// Fig 10(b): `n_flows` flows drawn from a heavy-tailed size
    /// distribution over uniformly random (src ≠ dst) pairs, arriving as
    /// a Poisson process.
    Mix {
        /// Flow-size distribution (e.g. [`FlowSizeDist::fb_web`]).
        dist: FlowSizeDist,
        /// Number of flows to offer.
        n_flows: usize,
        /// Mean inter-arrival gap **per node**: the network-wide Poisson
        /// process uses `node_gap / n_nodes`, so the offered per-node
        /// load (`dist.mean() × 8 / node_gap`) is invariant across engine
        /// populations — a 16-FA fabric and a 128-host fat-tree see the
        /// same load per NIC from one spec.
        node_gap: SimDuration,
    },
}

/// A named, seeded workload scenario (see the module docs).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (labels experiment output).
    pub name: &'static str,
    /// Master seed; the flow list is a pure function of `(kind, seed,
    /// n_nodes)`.
    pub seed: u64,
    /// The communication pattern.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Expand into the flow list for an `n_nodes`-node network. Pure and
    /// deterministic: both engines are offered byte-identical workloads.
    pub fn flows(&self, n_nodes: usize) -> Vec<FlowSpec> {
        assert!(n_nodes >= 2, "a scenario needs at least two nodes");
        let mut rng = DetRng::from_label(self.seed, self.name);
        match &self.kind {
            ScenarioKind::Permutation { flow_bytes } => {
                let perm = permutation(n_nodes, &mut rng);
                (0..n_nodes as u32)
                    .map(|src| FlowSpec {
                        src,
                        dst: perm[src as usize],
                        bytes: *flow_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect()
            }
            ScenarioKind::Incast {
                backends,
                response_bytes,
            } => {
                let frontend = 0u32;
                let n_backends = (*backends).min(n_nodes - 1);
                incast_sources(n_nodes, frontend, n_backends, &mut rng)
                    .into_iter()
                    .map(|src| FlowSpec {
                        src,
                        dst: frontend,
                        bytes: *response_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect()
            }
            ScenarioKind::Mix {
                dist,
                n_flows,
                node_gap,
            } => {
                let net_gap = node_gap.as_secs_f64() / n_nodes as f64;
                let mut t = SimTime::ZERO;
                (0..*n_flows)
                    .map(|_| {
                        t += SimDuration::from_secs_f64(rng.exponential(net_gap));
                        let src = rng.below(n_nodes as u64) as u32;
                        let mut dst = rng.below(n_nodes as u64) as u32;
                        while dst == src {
                            dst = rng.below(n_nodes as u64) as u32;
                        }
                        FlowSpec {
                            src,
                            dst,
                            bytes: dist.sample(&mut rng).max(1),
                            start: t,
                        }
                    })
                    .collect()
            }
        }
    }

    /// Offer the scenario to the cell-accurate Stardust fabric as finite
    /// message flows (destination port 0 — one host NIC per FA, matching
    /// the transport topology's one-NIC hosts), run to `horizon` and
    /// return the FCT table.
    pub fn run_fabric<K: CoreKind>(
        &self,
        engine: &mut FabricEngine<K>,
        horizon: SimTime,
    ) -> FlowStats {
        for f in self.flows(engine.num_fas()) {
            engine.add_message(f.src, f.dst, 0, 0, f.bytes, f.start);
        }
        engine.run_until(horizon);
        engine.stats().flows.clone()
    }

    /// [`Scenario::run_fabric`] against the deterministic sharded fabric:
    /// the identical flow list, offered through the same message layer,
    /// run in parallel. Bit-identical to the sequential run by the
    /// sharded engine's conformance guarantee — which the conformance
    /// suite asserts through exactly this entry point.
    pub fn run_fabric_sharded<K: CoreKind>(
        &self,
        engine: &mut ShardedFabricEngine<K>,
        horizon: SimTime,
    ) -> FlowStats
    where
        FabricEngine<K>: Send,
    {
        for f in self.flows(engine.num_fas()) {
            engine.add_message(f.src, f.dst, 0, 0, f.bytes, f.start);
        }
        engine.run_until(horizon);
        engine.stats().flows
    }

    /// Offer the scenario to the §6.3 fat-tree transport simulator under
    /// `proto`, run to `horizon` and return the FCT table (restricted to
    /// the scenario's own flows, in spec order — background flows added
    /// beforehand are excluded).
    pub fn run_transport(
        &self,
        sim: &mut TransportSim,
        proto: Protocol,
        horizon: SimTime,
    ) -> FlowStats {
        let ids: Vec<FlowId> = self
            .flows(sim.num_hosts())
            .into_iter()
            .map(|f| sim.add_flow(proto, f.src, f.dst, f.bytes, f.start))
            .collect();
        sim.run_until(horizon);
        sim.flow_stats_for(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_fabric::FabricConfig;
    use stardust_topo::builders::{kary, two_tier, KaryParams, TwoTierParams};

    fn web_mix() -> Scenario {
        Scenario {
            name: "test-web-mix",
            seed: 7,
            kind: ScenarioKind::Mix {
                dist: FlowSizeDist::fb_web(),
                n_flows: 50,
                node_gap: SimDuration::from_micros(320),
            },
        }
    }

    #[test]
    fn flow_lists_are_deterministic_and_valid() {
        for scn in [
            Scenario {
                name: "perm",
                seed: 3,
                kind: ScenarioKind::Permutation { flow_bytes: 1_000 },
            },
            Scenario {
                name: "incast",
                seed: 3,
                kind: ScenarioKind::Incast {
                    backends: 10,
                    response_bytes: 450_000,
                },
            },
            web_mix(),
        ] {
            let a = scn.flows(16);
            let b = scn.flows(16);
            assert_eq!(a, b, "{}: expansion must be pure", scn.name);
            assert!(!a.is_empty());
            assert!(a.iter().all(|f| f.src != f.dst && f.bytes > 0));
            assert!(a.iter().all(|f| f.src < 16 && f.dst < 16));
        }
    }

    #[test]
    fn incast_backends_clamped_to_population() {
        let scn = Scenario {
            name: "incast-clamp",
            seed: 1,
            kind: ScenarioKind::Incast {
                backends: 1_000,
                response_bytes: 1_000,
            },
        };
        let flows = scn.flows(8);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.dst == 0 && f.src != 0));
    }

    #[test]
    fn mix_arrivals_are_increasing_poisson() {
        let flows = web_mix().flows(16);
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.last().unwrap().start > SimTime::ZERO);
    }

    #[test]
    fn one_spec_drives_both_engines() {
        let scn = web_mix();
        // Fabric side.
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let cfg = FabricConfig {
            host_ports: 1,
            host_port_bps: stardust_sim::units::gbps(40),
            ..FabricConfig::default()
        };
        let mut e = FabricEngine::new(tt.topo, cfg);
        let fab = scn.run_fabric(&mut e, SimTime::from_millis(20));
        assert_eq!(fab.len(), 50);
        assert_eq!(fab.completed(), 50, "lossless fabric must finish all");
        // Transport side, same spec.
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        let mut sim = TransportSim::new(ft, stardust_transport::TransportConfig::default());
        let tra = scn.run_transport(&mut sim, Protocol::Stardust, SimTime::from_millis(100));
        assert_eq!(tra.len(), 50);
        assert!(tra.completed() > 0);
        // Both tables carry real FCTs.
        assert!(fab.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
        assert!(tra.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn fabric_scenario_runs_are_bit_identical() {
        let run = || {
            let scn = web_mix();
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut e = FabricEngine::new(tt.topo, FabricConfig::default());
            scn.run_fabric(&mut e, SimTime::from_millis(20))
        };
        assert_eq!(run(), run());
    }
}
