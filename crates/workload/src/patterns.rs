//! Communication patterns: permutation, incast, all-to-all.

use stardust_sim::DetRng;

/// A random permutation with no fixed points (a derangement): node `i`
/// sends to `perm[i]` and `perm[i] != i`. This is the Fig 10(a) pattern:
/// "each node in a Fat-tree continuously sends traffic to one node and
/// receives from another, fully loading the data center."
pub fn permutation(n: usize, rng: &mut DetRng) -> Vec<u32> {
    assert!(n >= 2);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    loop {
        rng.shuffle(&mut perm);
        if perm.iter().enumerate().all(|(i, &p)| p != i as u32) {
            return perm;
        }
        // Expected number of reshuffles is e ≈ 2.72; cheap.
    }
}

/// The Fig 10(c) incast pattern: `n_backends` distinct sources (excluding
/// the frontend itself) picked from `total` nodes, all answering frontend
/// `dst`.
pub fn incast_sources(total: usize, dst: u32, n_backends: usize, rng: &mut DetRng) -> Vec<u32> {
    assert!(n_backends < total, "need at least one non-source node");
    let mut candidates: Vec<u32> = (0..total as u32).filter(|&i| i != dst).collect();
    rng.shuffle(&mut candidates);
    candidates.truncate(n_backends);
    candidates
}

/// All ordered pairs `(src, dst)` with `src != dst` — §6.2's "two flows
/// from each Fabric Adapter to every other Fabric Adapter" uses this with
/// a multiplicity of 2.
pub fn all_to_all_pairs(n: usize) -> Vec<(u32, u32)> {
    let mut v = Vec::with_capacity(n * (n - 1));
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                v.push((s, d));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_derangement() {
        let mut rng = DetRng::from_label(11, "perm");
        for n in [2usize, 3, 16, 432] {
            let p = permutation(n, &mut rng);
            assert_eq!(p.len(), n);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
            assert!(p.iter().enumerate().all(|(i, &x)| x != i as u32));
        }
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        let mut a = DetRng::from_label(5, "p");
        let mut b = DetRng::from_label(5, "p");
        assert_eq!(permutation(100, &mut a), permutation(100, &mut b));
    }

    #[test]
    fn incast_sources_exclude_destination() {
        let mut rng = DetRng::from_label(13, "incast");
        let srcs = incast_sources(432, 7, 400, &mut rng);
        assert_eq!(srcs.len(), 400);
        assert!(!srcs.contains(&7));
        let mut uniq = srcs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 400);
    }

    #[test]
    fn all_to_all_count() {
        let pairs = all_to_all_pairs(16);
        assert_eq!(pairs.len(), 16 * 15);
        assert!(pairs.iter().all(|&(s, d)| s != d));
    }
}
