//! Flow-size distributions for the flow-completion-time experiments.
//!
//! Fig 10(b) replays "the Web workload from \[74\]" — Facebook's
//! frontend-web flow sizes, as packaged with the NDP/htsim artifact the
//! paper reproduces. The distribution is heavy at a few kilobytes with a
//! tail into megabytes ("Even flows of 1MB have a FCT of less than a
//! millisecond" — so the tail matters). We encode a log-spaced CDF of
//! that shape; the exact trace is not public (see DESIGN.md).

use stardust_sim::DetRng;

/// A piecewise log-linear flow-size CDF.
///
/// Semantics: sizes below `knots[0].0` have probability zero; if the
/// first knot's CDF value is positive it is an **atom** (a point mass) at
/// that size; between knots the CDF interpolates linearly in log-size.
/// [`FlowSizeDist::sample`], [`FlowSizeDist::quantile`],
/// [`FlowSizeDist::cdf`] and [`FlowSizeDist::mean`] all share this one
/// definition, so `cdf` is the exact inverse of `quantile` (up to integer
/// rounding of sizes) — the property `tests/properties.rs` pins.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSizeDist {
    /// Distribution name (e.g. the trace it was digitized from).
    pub name: &'static str,
    /// `(size_bytes, cdf)` knots: sizes strictly increasing, CDF values
    /// strictly increasing, ending at cdf = 1.0. The first knot's CDF
    /// value may be 0.0 (continuous from that size up) or positive (an
    /// atom at the minimum size).
    knots: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF knots.
    pub fn new(name: &'static str, knots: Vec<(u64, f64)>) -> Self {
        assert!(knots.len() >= 2);
        assert!(knots[0].0 >= 1, "zero-byte flows are not a thing");
        assert!(knots[0].1 >= 0.0);
        assert!(knots.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!((knots.last().unwrap().1 - 1.0).abs() < 1e-9);
        FlowSizeDist { name, knots }
    }

    /// The Facebook Web workload shape used by Fig 10(b): mostly small
    /// request/response flows, tail to ~10 MB. The leading zero-CDF knot
    /// makes the distribution continuous from 256 B up, so `sample` and
    /// `cdf` are exact inverses over all of (0, 1].
    pub fn fb_web() -> Self {
        FlowSizeDist::new(
            "Web",
            vec![
                (256, 0.0),
                (512, 0.05),
                (1_024, 0.15),
                (2_048, 0.30),
                (5_120, 0.50),
                (10_240, 0.65),
                (30_720, 0.80),
                (102_400, 0.90),
                (307_200, 0.95),
                (1_048_576, 0.98),
                (3_145_728, 0.995),
                (10_485_760, 1.0),
            ],
        )
    }

    /// A Hadoop-like shape: larger flows, shifted tail.
    pub fn fb_hadoop() -> Self {
        FlowSizeDist::new(
            "Hadoop",
            vec![
                (512, 0.0),
                (1_024, 0.05),
                (10_240, 0.20),
                (102_400, 0.45),
                (1_048_576, 0.75),
                (10_485_760, 0.95),
                (104_857_600, 1.0),
            ],
        )
    }

    /// The exact quantile function (inverse CDF) at `u ∈ [0, 1]`:
    /// `u` at or below the first knot's CDF value lands on the first-knot
    /// atom; above it, log-linear interpolation between the bracketing
    /// knots, rounded to whole bytes.
    pub fn quantile(&self, u: f64) -> u64 {
        assert!((0.0..=1.0).contains(&u), "u = {u} out of [0,1]");
        let mut prev = self.knots[0];
        if u <= prev.1 {
            return prev.0;
        }
        for &(s, c) in &self.knots[1..] {
            if u <= c {
                let (s0, c0) = prev;
                let t = (u - c0) / (c - c0);
                let ls0 = (s0 as f64).ln();
                let ls1 = (s as f64).ln();
                return (ls0 + t * (ls1 - ls0)).exp().round() as u64;
            }
            prev = (s, c);
        }
        self.knots.last().unwrap().0
    }

    /// Inverse-CDF sample of a flow size in bytes.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        self.quantile(rng.unit())
    }

    /// The CDF evaluated at `bytes` — the exact inverse of
    /// [`FlowSizeDist::quantile`]: zero strictly below the first knot,
    /// the atom mass at it, log-linear interpolation between knots.
    pub fn cdf(&self, bytes: u64) -> f64 {
        let (s_min, c_min) = self.knots[0];
        if bytes < s_min {
            return 0.0;
        }
        if bytes == s_min {
            return c_min;
        }
        for w in self.knots.windows(2) {
            let ((s0, c0), (s1, c1)) = (w[0], w[1]);
            if bytes <= s1 {
                let t = ((bytes as f64).ln() - (s0 as f64).ln())
                    / ((s1 as f64).ln() - (s0 as f64).ln());
                return c0 + t * (c1 - c0);
            }
        }
        1.0
    }

    /// The exact mean flow size: the first-knot atom contributes
    /// `c₀ · s₀`; each log-linear segment carries mass `c₁ − c₀` with
    /// conditional mean `(s₁ − s₀) / ln(s₁ / s₀)` (the mean of a
    /// log-uniform variable on `[s₀, s₁]`). Replaces the old 50 000-draw
    /// Monte-Carlo estimate — closed-form, deterministic and ~10⁵× cheaper.
    pub fn mean(&self) -> f64 {
        let (s_min, c_min) = self.knots[0];
        let mut m = c_min * s_min as f64;
        for w in self.knots.windows(2) {
            let ((s0, c0), (s1, c1)) = (w[0], w[1]);
            let seg_mean = (s1 - s0) as f64 / ((s1 as f64).ln() - (s0 as f64).ln());
            m += (c1 - c0) * seg_mean;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_median_is_about_5kb() {
        let d = FlowSizeDist::fb_web();
        assert!((d.cdf(5_120) - 0.5).abs() < 0.02);
    }

    #[test]
    fn samples_respect_cdf() {
        let d = FlowSizeDist::fb_web();
        let mut rng = DetRng::from_label(3, "fs");
        let n = 50_000;
        let below_10k = (0..n).filter(|_| d.sample(&mut rng) <= 10_240).count() as f64 / n as f64;
        assert!((below_10k - 0.65).abs() < 0.02, "got {below_10k}");
    }

    #[test]
    fn samples_bounded_by_knots() {
        let d = FlowSizeDist::fb_web();
        let mut rng = DetRng::from_label(4, "fs2");
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((256..=10_485_760).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn sample_reaches_below_the_first_positive_knot() {
        // Regression: `sample` used to be unable to return anything under
        // the first knot even though `cdf` ramped from 0 there — the two
        // disagreed on the whole sub-512 B region.
        let d = FlowSizeDist::fb_web();
        let mut rng = DetRng::from_label(5, "fs3");
        let n = 50_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) < 512).count() as f64 / n as f64;
        assert!((small - d.cdf(511)).abs() < 0.01, "got {small}");
        assert!(small > 0.03, "sub-512B flows must exist");
    }

    #[test]
    fn cdf_and_quantile_are_inverses() {
        for d in [FlowSizeDist::fb_web(), FlowSizeDist::fb_hadoop()] {
            for i in 1..=1000 {
                let u = i as f64 / 1000.0;
                let err = (d.cdf(d.quantile(u)) - u).abs();
                assert!(err < 2e-3, "{}: u={u} err={err}", d.name);
            }
        }
    }

    #[test]
    fn atom_at_first_knot_round_trips() {
        // A distribution with a genuine point mass at its minimum size:
        // all of that mass maps to the first knot, whose CDF is the atom.
        let d = FlowSizeDist::new("atomic", vec![(1_000, 0.25), (10_000, 1.0)]);
        assert_eq!(d.quantile(0.1), 1_000);
        assert_eq!(d.quantile(0.25), 1_000);
        assert_eq!(d.cdf(1_000), 0.25);
        assert_eq!(d.cdf(999), 0.0);
        let err = (d.cdf(d.quantile(0.7)) - 0.7).abs();
        assert!(err < 1e-3);
        // Atom mass contributes to the mean.
        let expected = 0.25 * 1_000.0 + 0.75 * 9_000.0 / (10f64).ln();
        assert!((d.mean() - expected).abs() < 1e-9);
    }

    #[test]
    fn closed_form_mean_matches_sampling() {
        // Pin the closed form against a large sampled estimate; the
        // Hadoop tail reaches 100 MB, so give the Monte-Carlo side a
        // proportionally wider (but still tight) tolerance.
        for (d, tol) in [
            (FlowSizeDist::fb_web(), 0.02),
            (FlowSizeDist::fb_hadoop(), 0.03),
        ] {
            let mut rng = DetRng::from_label(7, "flow-mean");
            let n = 50_000;
            let sampled = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
            let exact = d.mean();
            let rel = (sampled - exact).abs() / exact;
            assert!(rel < tol, "{}: sampled {sampled} vs exact {exact}", d.name);
        }
    }

    #[test]
    fn hadoop_flows_are_bigger() {
        assert!(FlowSizeDist::fb_hadoop().mean() > 5.0 * FlowSizeDist::fb_web().mean());
    }

    #[test]
    fn cdf_monotone() {
        let d = FlowSizeDist::fb_web();
        let mut last = 0.0;
        for b in (256..1_000_000).step_by(7919) {
            let c = d.cdf(b);
            assert!(c >= last - 1e-12);
            last = c;
        }
    }

    #[test]
    #[should_panic]
    fn bad_knots_rejected() {
        FlowSizeDist::new("bad", vec![(10, 0.5), (5, 1.0)]);
    }
}
