//! Flow-size distributions for the flow-completion-time experiments.
//!
//! Fig 10(b) replays "the Web workload from \[74\]" — Facebook's
//! frontend-web flow sizes, as packaged with the NDP/htsim artifact the
//! paper reproduces. The distribution is heavy at a few kilobytes with a
//! tail into megabytes ("Even flows of 1MB have a FCT of less than a
//! millisecond" — so the tail matters). We encode a log-spaced CDF of
//! that shape; the exact trace is not public (see DESIGN.md).

use stardust_sim::DetRng;

/// A piecewise-linear (in log-size) flow-size CDF.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    /// Distribution name (e.g. the trace it was digitized from).
    pub name: &'static str,
    /// `(size_bytes, cdf)` knots, strictly increasing in both coordinates,
    /// ending at cdf = 1.0.
    knots: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF knots.
    pub fn new(name: &'static str, knots: Vec<(u64, f64)>) -> Self {
        assert!(knots.len() >= 2);
        assert!(knots.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!((knots.last().unwrap().1 - 1.0).abs() < 1e-9);
        FlowSizeDist { name, knots }
    }

    /// The Facebook Web workload shape used by Fig 10(b): mostly small
    /// request/response flows, tail to ~10 MB.
    pub fn fb_web() -> Self {
        FlowSizeDist::new(
            "Web",
            vec![
                (512, 0.05),
                (1_024, 0.15),
                (2_048, 0.30),
                (5_120, 0.50),
                (10_240, 0.65),
                (30_720, 0.80),
                (102_400, 0.90),
                (307_200, 0.95),
                (1_048_576, 0.98),
                (3_145_728, 0.995),
                (10_485_760, 1.0),
            ],
        )
    }

    /// A Hadoop-like shape: larger flows, shifted tail.
    pub fn fb_hadoop() -> Self {
        FlowSizeDist::new(
            "Hadoop",
            vec![
                (1_024, 0.05),
                (10_240, 0.20),
                (102_400, 0.45),
                (1_048_576, 0.75),
                (10_485_760, 0.95),
                (104_857_600, 1.0),
            ],
        )
    }

    /// Inverse-CDF sample of a flow size in bytes (log-linear
    /// interpolation between knots).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.unit();
        let mut prev = (self.knots[0].0, 0.0);
        for &(s, c) in &self.knots {
            if u <= c {
                let (s0, c0) = prev;
                let t = if c - c0 > 1e-12 {
                    (u - c0) / (c - c0)
                } else {
                    1.0
                };
                let ls0 = (s0 as f64).ln();
                let ls1 = (s as f64).ln();
                return (ls0 + t * (ls1 - ls0)).exp().round() as u64;
            }
            prev = (s, c);
        }
        self.knots.last().unwrap().0
    }

    /// The CDF evaluated at `bytes` (log-linear interpolation).
    pub fn cdf(&self, bytes: u64) -> f64 {
        if bytes <= self.knots[0].0 {
            return self.knots[0].1 * (bytes as f64 / self.knots[0].0 as f64);
        }
        for w in self.knots.windows(2) {
            let ((s0, c0), (s1, c1)) = (w[0], w[1]);
            if bytes <= s1 {
                let t = ((bytes as f64).ln() - (s0 as f64).ln())
                    / ((s1 as f64).ln() - (s0 as f64).ln());
                return c0 + t * (c1 - c0);
            }
        }
        1.0
    }

    /// Approximate mean flow size (by sampling; deterministic seed).
    pub fn approx_mean(&self) -> f64 {
        let mut rng = DetRng::from_label(7, "flow-mean");
        let n = 50_000;
        (0..n).map(|_| self.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_median_is_about_5kb() {
        let d = FlowSizeDist::fb_web();
        assert!((d.cdf(5_120) - 0.5).abs() < 0.02);
    }

    #[test]
    fn samples_respect_cdf() {
        let d = FlowSizeDist::fb_web();
        let mut rng = DetRng::from_label(3, "fs");
        let n = 50_000;
        let below_10k = (0..n).filter(|_| d.sample(&mut rng) <= 10_240).count() as f64 / n as f64;
        assert!((below_10k - 0.65).abs() < 0.02, "got {below_10k}");
    }

    #[test]
    fn samples_bounded_by_knots() {
        let d = FlowSizeDist::fb_web();
        let mut rng = DetRng::from_label(4, "fs2");
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((256..=10_485_760).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn hadoop_flows_are_bigger() {
        assert!(
            FlowSizeDist::fb_hadoop().approx_mean() > 5.0 * FlowSizeDist::fb_web().approx_mean()
        );
    }

    #[test]
    fn cdf_monotone() {
        let d = FlowSizeDist::fb_web();
        let mut last = 0.0;
        for b in (512..1_000_000).step_by(7919) {
            let c = d.cdf(b);
            assert!(c >= last - 1e-12);
            last = c;
        }
    }

    #[test]
    #[should_panic]
    fn bad_knots_rejected() {
        FlowSizeDist::new("bad", vec![(10, 0.5), (5, 1.0)]);
    }
}
