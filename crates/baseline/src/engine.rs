//! The push-fabric (Ethernet switch) discrete-event engine.

use stardust_sim::link::fiber_delay;
use stardust_sim::units::serialization_time;
use stardust_sim::{Counter, DetRng, EventQueue, Histogram, ScheduledEvent, SimDuration, SimTime};
use stardust_topo::{NodeId, NodeKind, Topology};
use std::collections::VecDeque;

/// How switches pick among equal-cost next hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Classic ECMP: hash of (src, dst, port, flow) pins a flow to a path.
    FlowHash,
    /// Per-packet random spraying (packet-level load balancing ablation;
    /// reorders packets, which the fabric-level metrics here ignore).
    PacketSpray,
}

/// Push-fabric configuration.
#[derive(Debug, Clone)]
pub struct PushConfig {
    /// Fabric link rate, bits/s.
    pub link_bps: u64,
    /// Host-facing port rate at the ToRs, bits/s.
    pub host_port_bps: u64,
    /// Host-facing ports per ToR.
    pub host_ports: u8,
    /// Buffer bytes per fabric-switch output queue (shared across TCs).
    pub switch_buffer_bytes: u64,
    /// Buffer bytes per ToR egress port.
    pub tor_buffer_bytes: u64,
    /// ECN marking threshold per queue, bytes (None = no marking).
    pub ecn_threshold_bytes: Option<u64>,
    /// Load-balancing policy.
    pub lb: LoadBalance,
    /// Traffic classes (0 = strict highest priority).
    pub num_tcs: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig {
            link_bps: stardust_sim::units::gbps(50),
            host_port_bps: stardust_sim::units::gbps(100),
            host_ports: 4,
            switch_buffer_bytes: 1024 * 1024,
            tor_buffer_bytes: 32 * 1024 * 1024,
            ecn_threshold_bytes: None,
            lb: LoadBalance::FlowHash,
            num_tcs: 2,
            seed: 0xE7E7,
        }
    }
}

/// A packet in the push fabric.
#[derive(Debug, Clone, Copy)]
pub struct PushPacket {
    /// Source ToR index.
    pub src_tor: u32,
    /// Destination ToR index.
    pub dst_tor: u32,
    /// Destination host port on the destination ToR.
    pub dst_port: u8,
    /// Traffic class.
    pub tc: u8,
    /// Flow label used for ECMP hashing.
    pub flow: u32,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Whether the packet has been ECN-marked.
    pub ecn: bool,
    /// Injection timestamp.
    pub injected_at: SimTime,
}

#[derive(Debug, Clone)]
enum Ev {
    Inject { pkt: PushPacket },
    TxDone { dir: u32 },
    Arrive { dir: u32, pkt: PushPacket },
    PortTxDone { tor: u32, port: u8 },
    FlowTick { flow: u32 },
}

/// One direction of a fabric link: strict-priority output queues with a
/// shared byte budget and tail drop (low classes dropped first).
#[derive(Debug)]
struct DirState {
    rate_bps: u64,
    prop: SimDuration,
    queues: Vec<VecDeque<PushPacket>>,
    queued_bytes: u64,
    in_service: Option<PushPacket>,
    dst_node: NodeId,
}

impl DirState {
    fn total_depth_bytes(&self) -> u64 {
        self.queued_bytes + self.in_service.map_or(0, |p| p.bytes as u64)
    }
}

/// ToR egress port: single FIFO with byte cap.
#[derive(Debug)]
struct PortState {
    queue: VecDeque<PushPacket>,
    queued_bytes: u64,
    busy: bool,
}

#[derive(Debug, Clone, Copy)]
struct CbrFlow {
    src_tor: u32,
    dst_tor: u32,
    dst_port: u8,
    tc: u8,
    flow: u32,
    pkt_bytes: u32,
    interval: SimDuration,
    stop: SimTime,
}

/// Measurements of the push fabric.
#[derive(Debug)]
pub struct PushStats {
    /// Packets handed to the fabric.
    pub packets_injected: Counter,
    /// Packets that reached their destination port.
    pub packets_delivered: Counter,
    /// Drops inside the fabric (switch output queues).
    pub fabric_drops: Counter,
    /// Drops at the destination ToR egress buffer.
    pub egress_drops: Counter,
    /// ECN marks applied by switch queues.
    pub ecn_marks: Counter,
    /// Payload bytes of delivered packets.
    pub bytes_delivered: Counter,
    /// Delivered bytes per (ToR, port).
    pub delivered_per_port: Vec<Vec<u64>>,
    /// Delivered bytes per (ToR, port, tc).
    pub delivered_per_port_tc: Vec<Vec<Vec<u64>>>,
    /// Per-packet end-to-end latency, ns bins.
    pub latency_ns: Histogram,
    /// Switch queue depth in KB, sampled at packet arrival.
    pub queue_kb: Histogram,
}

impl PushStats {
    fn new(tors: usize, ports: usize, tcs: usize) -> Self {
        PushStats {
            packets_injected: Counter::default(),
            packets_delivered: Counter::default(),
            fabric_drops: Counter::default(),
            egress_drops: Counter::default(),
            ecn_marks: Counter::default(),
            bytes_delivered: Counter::default(),
            delivered_per_port: vec![vec![0; ports]; tors],
            delivered_per_port_tc: vec![vec![vec![0; tcs]; ports]; tors],
            latency_ns: Histogram::new(100, 100_000),
            queue_kb: Histogram::new(1, 64 * 1024),
        }
    }
}

/// FNV-style mix for flow hashing.
fn hash_flow(src: u32, dst: u32, port: u8, flow: u32, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for b in [src as u64, dst as u64, port as u64, flow as u64] {
        h ^= b;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The push-fabric simulator.
pub struct PushEngine {
    cfg: PushConfig,
    topo: Topology,
    tors: Vec<NodeId>,
    tor_of_node: Vec<u32>,
    dirs: Vec<DirState>,
    ports: Vec<Vec<PortState>>,
    reach: Vec<Vec<NodeId>>,
    events: EventQueue<Ev>,
    /// Scratch buffer for batched same-timestamp dispatch in `run_until`.
    batch: Vec<ScheduledEvent<Ev>>,
    flows: Vec<CbrFlow>,
    /// Per-flow jitter streams, split (not forked) off a labelled base so
    /// each flow's jitter sequence is a pure function of `(seed, flow)` —
    /// independent of registration order and of every other flow's
    /// packet count.
    flow_jitter: Vec<DetRng>,
    stats: PushStats,
    rng: DetRng,
    next_flow_id: u32,
}

impl PushEngine {
    /// Build a push fabric over `topo` (edge nodes = ToRs, fabric nodes =
    /// Ethernet switches; no host nodes).
    pub fn new(topo: Topology, cfg: PushConfig) -> Self {
        let tors = topo.nodes_of_kind(NodeKind::Edge);
        assert!(!tors.is_empty());
        assert!(topo.nodes_of_kind(NodeKind::Host).is_empty());
        let mut tor_of_node = vec![u32::MAX; topo.num_nodes()];
        for (i, &n) in tors.iter().enumerate() {
            tor_of_node[n.0 as usize] = i as u32;
        }
        let mut dirs = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.link_ids() {
            let link = topo.link(l);
            for from_end in 0..2u8 {
                dirs.push(DirState {
                    rate_bps: cfg.link_bps,
                    prop: fiber_delay(link.meters as u64),
                    queues: (0..cfg.num_tcs).map(|_| VecDeque::new()).collect(),
                    queued_bytes: 0,
                    in_service: None,
                    dst_node: link.dst_of(from_end),
                });
            }
        }
        let ports = tors
            .iter()
            .map(|_| {
                (0..cfg.host_ports)
                    .map(|_| PortState {
                        queue: VecDeque::new(),
                        queued_bytes: 0,
                        busy: false,
                    })
                    .collect()
            })
            .collect();
        let reach = topo.downward_edge_reach();
        let stats = PushStats::new(tors.len(), cfg.host_ports as usize, cfg.num_tcs as usize);
        let rng = DetRng::from_label(cfg.seed, "push-engine");
        PushEngine {
            cfg,
            topo,
            tors,
            tor_of_node,
            dirs,
            ports,
            reach,
            events: EventQueue::new(),
            batch: Vec::new(),
            flows: Vec::new(),
            flow_jitter: Vec::new(),
            stats,
            rng,
            next_flow_id: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Collected statistics.
    pub fn stats(&self) -> &PushStats {
        &self.stats
    }

    /// Number of ToRs.
    pub fn num_tors(&self) -> usize {
        self.tors.len()
    }

    /// Inject a single packet at `at`.
    #[allow(clippy::too_many_arguments)]
    pub fn inject(
        &mut self,
        at: SimTime,
        src_tor: u32,
        dst_tor: u32,
        dst_port: u8,
        tc: u8,
        flow: u32,
        bytes: u32,
    ) {
        assert_ne!(src_tor, dst_tor);
        assert!(tc < self.cfg.num_tcs);
        let pkt = PushPacket {
            src_tor,
            dst_tor,
            dst_port,
            tc,
            flow,
            bytes,
            ecn: false,
            injected_at: at,
        };
        self.events.schedule(at, Ev::Inject { pkt });
    }

    /// Add an open-loop CBR flow (mirror of the fabric engine's API).
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src_tor: u32,
        dst_tor: u32,
        dst_port: u8,
        tc: u8,
        rate_bps: u64,
        pkt_bytes: u32,
        start: SimTime,
        stop: SimTime,
    ) -> u32 {
        let flow = self.next_flow_id;
        self.next_flow_id += 1;
        let interval = serialization_time(pkt_bytes as u64, rate_bps);
        let id = self.flows.len() as u32;
        self.flows.push(CbrFlow {
            src_tor,
            dst_tor,
            dst_port,
            tc,
            flow,
            pkt_bytes,
            interval,
            stop,
        });
        self.flow_jitter
            .push(DetRng::from_label(self.cfg.seed, "push-flow-jitter").split_u64(id as u64));
        self.events.schedule(start, Ev::FlowTick { flow: id });
        flow
    }

    /// Run until `horizon`, draining same-timestamp events in batches,
    /// then advance the clock to `horizon` (unless it is
    /// [`SimTime::MAX`], which means "run to exhaustion") so back-to-back
    /// windowed runs cover exactly their span.
    pub fn run_until(&mut self, horizon: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        while self.events.pop_batch_until(horizon, &mut batch) > 0 {
            for ev in batch.drain(..) {
                self.dispatch(ev.at, ev.payload);
            }
        }
        self.batch = batch;
        if horizon < SimTime::MAX {
            self.events.advance_clock(horizon);
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Inject { pkt } => {
                self.stats.packets_injected.inc();
                let node = self.tors[pkt.src_tor as usize];
                self.route(now, node, pkt);
            }
            Ev::TxDone { dir } => self.on_tx_done(now, dir),
            Ev::Arrive { dir, pkt } => {
                let node = self.dirs[dir as usize].dst_node;
                let tor = self.tor_of_node[node.0 as usize];
                if tor != u32::MAX {
                    self.deliver_at_tor(now, tor, pkt);
                } else {
                    self.route(now, node, pkt);
                }
            }
            Ev::PortTxDone { tor, port } => self.on_port_tx_done(now, tor, port),
            Ev::FlowTick { flow } => self.on_flow_tick(now, flow),
        }
    }

    fn on_flow_tick(&mut self, now: SimTime, idx: u32) {
        let f = self.flows[idx as usize];
        if now >= f.stop {
            return;
        }
        let pkt = PushPacket {
            src_tor: f.src_tor,
            dst_tor: f.dst_tor,
            dst_port: f.dst_port,
            tc: f.tc,
            flow: f.flow,
            bytes: f.pkt_bytes,
            ecn: false,
            injected_at: now,
        };
        self.stats.packets_injected.inc();
        let node = self.tors[f.src_tor as usize];
        self.route(now, node, pkt);
        // ±5% deterministic jitter breaks phase locking between equal-rate
        // flows (perfectly synchronized arrivals would otherwise bias which
        // flow's packets meet a full queue — an artifact, not a behaviour).
        // Each flow draws from its own split stream, so the sequence is a
        // pure function of (seed, flow id).
        let jitter = 0.95 + 0.1 * self.flow_jitter[idx as usize].unit();
        let gap = SimDuration::from_ps((f.interval.as_ps() as f64 * jitter) as u64);
        self.events.schedule(now + gap, Ev::FlowTick { flow: idx });
    }

    /// Pick the output link at `node` for `pkt` and enqueue.
    fn route(&mut self, now: SimTime, node: NodeId, pkt: PushPacket) {
        let dst_node = self.tors[pkt.dst_tor as usize];
        let candidates = self.topo.forward_links(node, dst_node, &self.reach);
        debug_assert!(!candidates.is_empty(), "no route from {node:?}");
        let link = match self.cfg.lb {
            LoadBalance::FlowHash => {
                let h = hash_flow(
                    pkt.src_tor,
                    pkt.dst_tor,
                    pkt.dst_port,
                    pkt.flow,
                    self.cfg.seed,
                );
                candidates[(h % candidates.len() as u64) as usize]
            }
            LoadBalance::PacketSpray => *self.rng.pick(&candidates),
        };
        let dir = link.0 * 2 + self.topo.link(link).end_of(node) as u32;
        self.enqueue(now, dir, pkt);
    }

    /// Output-queue a packet on a fabric link direction: tail drop against
    /// the shared buffer (dropping the lowest class first when the
    /// arriving packet outranks it), optional ECN marking.
    fn enqueue(&mut self, now: SimTime, dir_idx: u32, mut pkt: PushPacket) {
        let buf = self.cfg.switch_buffer_bytes;
        let ecn_th = self.cfg.ecn_threshold_bytes;
        let d = &mut self.dirs[dir_idx as usize];
        let depth = d.total_depth_bytes();
        self.stats.queue_kb.record(depth / 1024);
        if let Some(th) = ecn_th {
            if depth >= th {
                pkt.ecn = true;
                self.stats.ecn_marks.inc();
            }
        }
        if depth + pkt.bytes as u64 > buf {
            // Strict-priority buffer policy: try to evict a lower class.
            let evicted = (pkt.tc as usize + 1..d.queues.len())
                .rev()
                .find_map(|tc| d.queues[tc].pop_back().map(|victim| (tc, victim)));
            match evicted {
                Some((_, victim)) => {
                    d.queued_bytes -= victim.bytes as u64;
                    self.stats.fabric_drops.inc();
                }
                None => {
                    self.stats.fabric_drops.inc();
                    return; // arriving packet dropped
                }
            }
        }
        if d.in_service.is_none() {
            let t = serialization_time(pkt.bytes as u64, d.rate_bps);
            d.in_service = Some(pkt);
            self.events.schedule(now + t, Ev::TxDone { dir: dir_idx });
        } else {
            d.queued_bytes += pkt.bytes as u64;
            d.queues[pkt.tc as usize].push_back(pkt);
        }
    }

    fn on_tx_done(&mut self, now: SimTime, dir_idx: u32) {
        let d = &mut self.dirs[dir_idx as usize];
        let pkt = d.in_service.take().expect("TxDone without packet");
        self.events
            .schedule(now + d.prop, Ev::Arrive { dir: dir_idx, pkt });
        // Strict priority dequeue.
        let next = d.queues.iter_mut().find_map(|q| q.pop_front());
        if let Some(next) = next {
            d.queued_bytes -= next.bytes as u64;
            let t = serialization_time(next.bytes as u64, d.rate_bps);
            d.in_service = Some(next);
            self.events.schedule(now + t, Ev::TxDone { dir: dir_idx });
        }
    }

    fn deliver_at_tor(&mut self, now: SimTime, tor: u32, pkt: PushPacket) {
        debug_assert_eq!(tor, pkt.dst_tor);
        let cap = self.cfg.tor_buffer_bytes;
        let host_bps = self.cfg.host_port_bps;
        let ps = &mut self.ports[tor as usize][pkt.dst_port as usize];
        if ps.queued_bytes + pkt.bytes as u64 > cap {
            self.stats.egress_drops.inc();
            return;
        }
        ps.queued_bytes += pkt.bytes as u64;
        ps.queue.push_back(pkt);
        if !ps.busy {
            ps.busy = true;
            let t = serialization_time(pkt.bytes as u64, host_bps);
            self.events.schedule(
                now + t,
                Ev::PortTxDone {
                    tor,
                    port: pkt.dst_port,
                },
            );
        }
    }

    fn on_port_tx_done(&mut self, now: SimTime, tor: u32, port: u8) {
        let host_bps = self.cfg.host_port_bps;
        let ps = &mut self.ports[tor as usize][port as usize];
        let pkt = ps.queue.pop_front().expect("PortTxDone without packet");
        ps.queued_bytes -= pkt.bytes as u64;
        if let Some(next) = ps.queue.front() {
            let t = serialization_time(next.bytes as u64, host_bps);
            self.events.schedule(now + t, Ev::PortTxDone { tor, port });
        } else {
            ps.busy = false;
        }
        self.stats.packets_delivered.inc();
        self.stats.bytes_delivered.add(pkt.bytes as u64);
        self.stats.delivered_per_port[tor as usize][port as usize] += pkt.bytes as u64;
        self.stats.delivered_per_port_tc[tor as usize][port as usize][pkt.tc as usize] +=
            pkt.bytes as u64;
        let lat = now.since(pkt.injected_at).as_nanos_f64() as u64;
        self.stats.latency_ns.record(lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_sim::units::gbps;
    use stardust_topo::builders::{two_tier, TwoTierParams};
    use stardust_topo::{NodeKind, Topology};

    /// The Figure 7 topology: 3 ToRs (2 ingress, 1 egress), 2 middle
    /// switches, one 100G link from each ToR to each switch.
    fn fig7_topo() -> Topology {
        let mut t = Topology::new();
        let tors: Vec<_> = (0..3).map(|_| t.add_node(NodeKind::Edge, 1)).collect();
        let sws: Vec<_> = (0..2).map(|_| t.add_node(NodeKind::Fabric, 2)).collect();
        for &tor in &tors {
            for &sw in &sws {
                t.add_link(tor, sw, 10);
            }
        }
        t
    }

    fn fig7_cfg() -> PushConfig {
        PushConfig {
            link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            switch_buffer_bytes: 256 * 1024,
            tor_buffer_bytes: 256 * 1024,
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        }
    }

    #[test]
    fn uncongested_traffic_flows_at_line_rate() {
        let mut e = PushEngine::new(fig7_topo(), fig7_cfg());
        let stop = SimTime::from_millis(1);
        e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        e.run_until(SimTime::from_millis(2));
        let delivered = e.stats().delivered_per_port[2][0];
        let rate = delivered as f64 * 8.0 / 1e-3;
        assert!(rate > 0.95 * 100e9, "rate {rate}");
        assert_eq!(e.stats().fabric_drops.get(), 0);
    }

    #[test]
    fn fig7_congestion_collaterally_damages_b() {
        // in0 → A (port 0) 100G; in0 → B (port 1) 100G; in1 → A 100G.
        //
        // Exactly how the tail-drops split between A and B depends on the
        // relative phase of the CBR sources (a single seed lands anywhere
        // in 69–90 Gbps for B), so average over a fixed seed set and
        // assert the mean — phase noise cancels, and the band tightens to
        // the collateral-damage effect the paper reports (B delivers
        // ~66% of its offered load while its own port sits idle).
        let seeds = [1u64, 2, 3, 4, 5];
        let mut total_drops = 0u64;
        let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
        for seed in seeds {
            let cfg = PushConfig { seed, ..fig7_cfg() };
            let mut e = PushEngine::new(fig7_topo(), cfg);
            let stop = SimTime::from_millis(2);
            e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
            e.add_cbr_flow(0, 2, 1, 0, gbps(100), 1500, SimTime::ZERO, stop);
            e.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
            e.run_until(SimTime::from_millis(3));
            sum_a += e.stats().delivered_per_port[2][0] as f64 * 8.0 / 2e-3 / 1e9;
            sum_b += e.stats().delivered_per_port[2][1] as f64 * 8.0 / 2e-3 / 1e9;
            total_drops += e.stats().fabric_drops.get();
        }
        let a = sum_a / seeds.len() as f64;
        let b = sum_b / seeds.len() as f64;
        assert!(a > 90.0, "A must saturate its port, got {a} Gbps mean");
        assert!(
            b < 92.0,
            "B should be collaterally damaged, got {b} Gbps mean"
        );
        assert!(
            b > 60.0,
            "B should still get most of its traffic, got {b} mean"
        );
        assert!(total_drops > 0, "congestion must actually drop in-fabric");
    }

    #[test]
    fn fig12_priority_classes_starve_b_entirely() {
        // Appendix F: A-traffic at high priority (tc 0), B at low (tc 1).
        let mut e = PushEngine::new(fig7_topo(), fig7_cfg());
        let stop = SimTime::from_millis(2);
        e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        e.add_cbr_flow(0, 2, 1, 1, gbps(100), 1500, SimTime::ZERO, stop); // B, low prio
        e.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        e.run_until(SimTime::from_millis(3));
        let a = e.stats().delivered_per_port[2][0] as f64 * 8.0 / 2e-3 / 1e9;
        let b = e.stats().delivered_per_port[2][1] as f64 * 8.0 / 2e-3 / 1e9;
        assert!(a > 90.0, "A got {a}");
        // "All of B's traffic unnecessarily dropped": B collapses.
        assert!(b < 15.0, "B should be starved, got {b} Gbps");
    }

    #[test]
    fn flow_hash_is_sticky_and_spray_is_not() {
        // Two flows from the same ToR with flow-hash either share or split;
        // with spraying both links carry traffic for a single flow.
        let topo = fig7_topo();
        let mut cfg = fig7_cfg();
        cfg.lb = LoadBalance::FlowHash;
        let mut e = PushEngine::new(topo, cfg);
        e.add_cbr_flow(
            0,
            2,
            0,
            0,
            gbps(40),
            1500,
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        e.run_until(SimTime::from_millis(2));
        // All packets of the flow took one path: no drops, full delivery.
        assert_eq!(e.stats().fabric_drops.get(), 0);
        let injected = e.stats().packets_injected.get();
        assert_eq!(e.stats().packets_delivered.get(), injected);
    }

    #[test]
    fn incast_fills_tor_buffer_and_drops() {
        // §5.4: the Ethernet fabric delivers the whole incast to the
        // destination ToR, whose buffer overflows.
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut cfg = PushConfig {
            tor_buffer_bytes: 64 * 1024, // deliberately small
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        };
        cfg.host_port_bps = gbps(50);
        let mut e = PushEngine::new(tt.topo, cfg);
        let n = e.num_tors() as u32;
        for src in 1..n {
            // 100KB burst from each source to ToR 0, port 0.
            for i in 0..66u64 {
                e.inject(SimTime::from_nanos(i * 120), src, 0, 0, 0, src, 1500);
            }
        }
        e.run_until(SimTime::from_millis(20));
        assert!(
            e.stats().egress_drops.get() > 0,
            "incast must overflow the ToR"
        );
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut cfg = fig7_cfg();
        cfg.ecn_threshold_bytes = Some(30_000);
        let mut e = PushEngine::new(fig7_topo(), cfg);
        let stop = SimTime::from_millis(1);
        e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        e.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        e.run_until(SimTime::from_millis(2));
        assert!(e.stats().ecn_marks.get() > 0);
    }

    #[test]
    fn priority_eviction_prefers_low_class_victims() {
        // When a high-priority packet meets a full queue holding
        // low-priority packets, the victim is the low one.
        let mut cfg = fig7_cfg();
        cfg.switch_buffer_bytes = 30_000; // 20 × 1500B
        let mut e = PushEngine::new(fig7_topo(), cfg);
        let stop = SimTime::from_millis(1);
        // Low class fills the shared queues first, then high joins.
        e.add_cbr_flow(0, 2, 1, 1, gbps(100), 1500, SimTime::ZERO, stop);
        e.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::from_micros(100), stop);
        e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::from_micros(100), stop);
        e.run_until(SimTime::from_millis(2));
        let hi = e.stats().delivered_per_port_tc[2][0][0];
        let lo = e.stats().delivered_per_port_tc[2][1][1];
        assert!(hi > 3 * lo, "high class must dominate: hi={hi} lo={lo}");
    }

    #[test]
    fn latency_reflects_queueing() {
        // An uncongested flow sees near-propagation latency; a congested
        // one sees buffer delay.
        let mut quiet = PushEngine::new(fig7_topo(), fig7_cfg());
        quiet.add_cbr_flow(
            0,
            2,
            0,
            0,
            gbps(10),
            1500,
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        quiet.run_until(SimTime::from_millis(2));
        let q_lat = quiet.stats().latency_ns.mean();

        let mut busy = PushEngine::new(fig7_topo(), fig7_cfg());
        let stop = SimTime::from_millis(1);
        busy.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        busy.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
        busy.run_until(SimTime::from_millis(2));
        let b_lat = busy.stats().latency_ns.mean();
        assert!(b_lat > 5.0 * q_lat, "quiet {q_lat}ns vs busy {b_lat}ns");
    }

    #[test]
    fn flow_hash_collisions_unbalance_links() {
        // The §5.3 motivation: flow hashing can put multiple flows on one
        // uplink while the other idles. With enough flows, per-flow paths
        // are measurably uneven vs packet spraying.
        let mut cfg = fig7_cfg();
        cfg.lb = LoadBalance::FlowHash;
        let mut e = PushEngine::new(fig7_topo(), cfg);
        let stop = SimTime::from_micros(500);
        // Two flows, each 60G, from ToR0: if hashed onto the same 100G
        // uplink they cannot both fit.
        for f in 0..2 {
            e.add_cbr_flow(0, 2, f, 0, gbps(60), 1500, SimTime::ZERO, stop);
        }
        e.run_until(SimTime::from_millis(1));
        // Either they split (no drops) or they collide (drops) — both are
        // legal hash outcomes; what must hold is determinism given the seed
        // and full delivery under spraying.
        let collided = e.stats().fabric_drops.get() > 0;
        let mut cfg2 = fig7_cfg();
        cfg2.lb = LoadBalance::PacketSpray;
        let mut e2 = PushEngine::new(fig7_topo(), cfg2);
        for f in 0..2 {
            e2.add_cbr_flow(0, 2, f, 0, gbps(60), 1500, SimTime::ZERO, stop);
        }
        e2.run_until(SimTime::from_millis(1));
        assert_eq!(e2.stats().fabric_drops.get(), 0, "spraying never collides");
        let _ = collided;
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut e = PushEngine::new(fig7_topo(), fig7_cfg());
            let stop = SimTime::from_micros(200);
            e.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
            e.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
            e.run_until(SimTime::from_millis(1));
            (
                e.stats().packets_delivered.get(),
                e.stats().fabric_drops.get(),
                e.stats().bytes_delivered.get(),
            )
        };
        assert_eq!(run(), run());
    }
}
