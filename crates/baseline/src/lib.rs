//! # stardust-baseline — the push-fabric Ethernet baseline
//!
//! The comparison fabric of §5.2/§5.4 and Appendix F: a network of
//! autonomous, output-queued Ethernet packet switches that *push* traffic
//! toward destinations and make only local decisions. Key contrasts with
//! the Stardust scheduled ("pull") fabric:
//!
//! * traffic enters the fabric unconditionally — congestion shows up as
//!   queue build-up inside the fabric and is resolved by tail drops;
//! * load balancing is flow-hash ECMP by default (per-packet spraying is
//!   available as an ablation), so collisions create hot links;
//! * a congested port damages innocent traffic sharing its queues — the
//!   paper's Figure 7 scenario, where one of B's thirds is dropped even
//!   though B's own egress port is idle;
//! * with strict-priority traffic classes the damage is worse (Figure 12 /
//!   Appendix F): low-class traffic sharing a congested fabric queue is
//!   starved entirely.
//!
//! The engine reuses `stardust-topo` topologies so the same scenarios run
//! on both fabrics from the benches.

pub mod engine;

pub use engine::{LoadBalance, PushConfig, PushEngine, PushStats};
