//! Virtual output queues (§3.3, §4.1).
//!
//! "The architecture uses virtual output queues (VOQs) to queue packets
//! arriving to the Fabric Adapter. Each destination port (and priority)
//! has an assigned VOQ. ... Empty VOQs do not consume buffering resources."
//!
//! A VOQ is addressed by (destination FA, destination port, traffic
//! class). On a credit grant it dequeues whole packets "up to the credit
//! size; the amount of surplus data is stored for later accounting" — we
//! model that with a signed credit balance: a burst may overshoot the
//! grant by part of its last packet, and the overshoot is deducted from
//! the next grant.

use crate::cell::Packet;
use std::collections::VecDeque;

/// VOQ address: (destination FA, destination port, traffic class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VoqKey {
    /// Destination Fabric Adapter index.
    pub dst_fa: u32,
    /// Destination host port on that FA.
    pub dst_port: u8,
    /// Traffic class.
    pub tc: u8,
}

/// One virtual output queue.
#[derive(Debug, Clone, Default)]
pub struct Voq {
    queue: VecDeque<Packet>,
    bytes: u64,
    /// Signed credit balance in bytes: positive = unused grant carried
    /// forward (bounded), negative = overshoot owed from the last burst.
    balance: i64,
    /// Bytes already requested from the egress scheduler but not yet
    /// granted (to size incremental request messages).
    requested: u64,
}

impl Voq {
    /// Empty VOQ.
    pub fn new() -> Self {
        Voq::default()
    }

    /// Queue occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Queue occupancy in packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueue a packet; returns the number of *new* bytes that should be
    /// requested from the egress scheduler (all of them — requests are
    /// incremental).
    pub fn push(&mut self, pkt: Packet) -> u64 {
        self.bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        let delta = pkt.bytes as u64;
        self.requested += delta;
        delta
    }

    /// Apply a credit grant of `credit_bytes`: dequeue whole packets until
    /// the grant (plus any positive balance, minus any owed overshoot) is
    /// exhausted. Returns the burst's packets (possibly empty if the
    /// balance owed exceeds the grant).
    ///
    /// `max_balance` bounds the carried-forward positive balance (a real
    /// scheduler would not bank unbounded credit; we cap at one credit).
    pub fn grant(&mut self, credit_bytes: u64, max_balance: i64) -> Vec<Packet> {
        let mut budget = credit_bytes as i64 + self.balance;
        let mut burst = Vec::new();
        while budget > 0 {
            match self.queue.front() {
                Some(p) => {
                    let sz = p.bytes as i64;
                    // Packet packing sends whole packets; the last packet
                    // may overshoot the remaining budget (§3.3's surplus).
                    budget -= sz;
                    self.bytes -= p.bytes as u64;
                    burst.push(self.queue.pop_front().unwrap());
                }
                None => break,
            }
        }
        // The grant consumed queued bytes that were previously requested.
        let sent: u64 = burst.iter().map(|p| p.bytes as u64).sum();
        self.requested = self.requested.saturating_sub(sent.min(self.requested));
        self.balance = budget.min(max_balance);
        burst
    }

    /// Outstanding (queued but unrequested) bytes — used by re-request
    /// logic after scheduler resets.
    pub fn requested_bytes(&self) -> u64 {
        self.requested
    }

    /// Forget request accounting (e.g. after a scheduler failover) so the
    /// whole queue is re-requested.
    pub fn reset_requests(&mut self) -> u64 {
        self.requested = self.bytes;
        self.bytes
    }

    /// Signed credit balance (test/diagnostic accessor).
    pub fn balance(&self) -> i64 {
        self.balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{PacketId, NO_FLOW};
    use stardust_sim::SimTime;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            id: PacketId(0),
            src_fa: 0,
            dst_fa: 1,
            dst_port: 0,
            tc: 0,
            bytes,
            flow: NO_FLOW,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn push_accumulates() {
        let mut v = Voq::new();
        assert!(v.is_empty());
        assert_eq!(v.push(pkt(1000)), 1000);
        assert_eq!(v.push(pkt(500)), 500);
        assert_eq!(v.bytes(), 1500);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn grant_dequeues_whole_packets_to_credit() {
        let mut v = Voq::new();
        for _ in 0..10 {
            v.push(pkt(1000));
        }
        let burst = v.grant(4096, 4096);
        // 4 packets = 4000 < 4096, 5th overshoots: packing sends it and
        // records the overshoot.
        assert_eq!(burst.len(), 5);
        assert_eq!(v.balance(), 4096 - 5000);
        // Next grant is reduced by the overshoot: 4096 - 904 = 3192 → 4 pkts.
        let burst2 = v.grant(4096, 4096);
        assert_eq!(burst2.len(), 4);
    }

    #[test]
    fn jumbo_packet_waits_for_enough_credit() {
        // A 9KB packet needs three 4KB credits' worth of balance... but
        // since packing overshoots, the first grant already releases it
        // and the deficit carries.
        let mut v = Voq::new();
        v.push(pkt(9000));
        let b1 = v.grant(4096, 4096);
        assert_eq!(b1.len(), 1);
        assert_eq!(v.balance(), 4096 - 9000);
        // An empty queue with debt: next grant releases nothing until
        // the balance recovers.
        v.push(pkt(9000));
        let b2 = v.grant(4096, 4096);
        assert!(
            b2.is_empty(),
            "debt {} must gate the next burst",
            v.balance()
        );
        let b3 = v.grant(4096, 4096);
        assert_eq!(b3.len(), 1);
    }

    #[test]
    fn positive_balance_is_capped() {
        let mut v = Voq::new();
        v.push(pkt(100));
        let b = v.grant(4096, 4096);
        assert_eq!(b.len(), 1);
        // Queue emptied with 3996 unused; capped at max_balance.
        assert_eq!(v.balance(), 3996);
        let mut v2 = Voq::new();
        v2.push(pkt(100));
        v2.grant(100_000, 4096);
        assert_eq!(v2.balance(), 4096);
    }

    #[test]
    fn request_accounting() {
        let mut v = Voq::new();
        v.push(pkt(1000));
        v.push(pkt(1000));
        assert_eq!(v.requested_bytes(), 2000);
        v.grant(1000, 0);
        assert_eq!(v.requested_bytes(), 1000);
        assert_eq!(v.reset_requests(), v.bytes());
    }

    #[test]
    fn grant_on_empty_returns_nothing() {
        let mut v = Voq::new();
        assert!(v.grant(4096, 4096).is_empty());
    }
}
