//! Fabric configuration knobs (defaults follow the paper's §6 setups).

use stardust_sim::{units, SimDuration};

/// All tunables of a Stardust fabric instance.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Fabric serial-link rate in bits/s (paper: 50 Gb/s, non-bundled).
    pub fabric_link_bps: u64,
    /// Maximum cell size on the wire, header included (paper: 256 B).
    pub cell_bytes: u16,
    /// Cell header bytes (destination FA + sequence + CRC; small, §3.2).
    pub cell_header_bytes: u16,
    /// Credit size in bytes (paper: 4 KB; §4.1 derives a 2 KB minimum for
    /// a 10 Tb/s adapter).
    pub credit_bytes: u32,
    /// Packet packing (§3.4). Disabling reproduces the "non-packed cells"
    /// strawman of §6.1.1: every packet chopped independently with padded
    /// tail cells.
    pub packet_packing: bool,
    /// Credit-rate speedup above the egress port rate (paper: 2–3%).
    pub credit_speedup: f64,
    /// Host-facing ports per Fabric Adapter.
    pub host_ports: u8,
    /// Host-facing port rate in bits/s.
    pub host_port_bps: u64,
    /// Number of traffic classes (0 = highest priority, strict).
    pub num_tcs: u8,
    /// FE output-queue depth (in cells) above which FCI is piggybacked.
    pub fci_threshold_cells: u32,
    /// Multiplicative credit-rate decrease on an FCI-marked cell arrival.
    pub fci_decrease: f64,
    /// Additive credit-rate recovery per credit tick.
    pub fci_recover: f64,
    /// Floor of the FCI throttle factor.
    pub fci_min: f64,
    /// Minimum gap between two FCI-triggered decreases on one port.
    pub fci_hold: SimDuration,
    /// Egress (reassembled, waiting-to-transmit) bytes per port above
    /// which the scheduler stops sending credits (§4.1).
    pub egress_hiwat_bytes: u64,
    /// ...and resumes below this.
    pub egress_lowat_bytes: u64,
    /// Reassembly timeout: a burst not completed within this window is
    /// discarded (§4.1, link-error handling).
    pub reassembly_timeout: SimDuration,
    /// One-way latency of the control plane (credit/request messages).
    /// Control cells traverse a dedicated crossbar with no data queueing
    /// (§4.2 "two k×k crossbars, one for data cells and one for control"),
    /// so we model them with a fixed fabric-transit latency.
    pub ctrl_latency: SimDuration,
    /// Spray permutation refresh period, in full round-robin rounds
    /// (§5.3: "a random permutation order, that is replaced every few
    /// rounds").
    pub spray_rounds_per_shuffle: u32,
    /// Reachability message interval; `None` runs with static tables
    /// (protocol converged, no failures possible).
    pub reach_interval: Option<SimDuration>,
    /// Consecutive missed reachability intervals before a link is
    /// declared failed (§5.10 / Appendix E's `th`).
    pub reach_miss_threshold: u32,
    /// Host flow control (§5.4: "the source Fabric Adapter can avoid
    /// packet loss by sending flow control messages back to the host, as
    /// in a standard ToR"): pause a CBR source when its VOQ exceeds the
    /// high watermark, resume below the low one. `None` disables.
    pub host_fc: Option<(u64, u64)>,
    /// Ingress VOQ capacity in bytes (`None` = unbounded). §3.1: "Long-term
    /// over-subscription from the hosts to the Fabric Adapter is handled as
    /// in any ToR, i.e., packets will be dropped in the Fabric Adapter."
    pub voq_max_bytes: Option<u64>,
    /// Low-latency traffic class (§5.6): packets of this class bypass the
    /// credit round-trip and transmit immediately. "We assume a limited
    /// aggregate bandwidth of all low latency VOQs ... else packets may be
    /// dropped (as in a ToR)."
    pub low_latency_tc: Option<u8>,
    /// Scheduling across traffic classes (§4.1: "typically a combination
    /// of round-robin, strict priority and weighted").
    pub sched_policy: SchedPolicy,
    /// MTU used when a finite message flow
    /// ([`crate::FabricEngine::add_message`]) is segmented into packets at
    /// the source Fabric Adapter ingress. Stardust itself is
    /// packet-agnostic — this only shapes the synthetic host traffic the
    /// Fig 10 FCT scenarios offer.
    pub msg_mtu_bytes: u32,
    /// Bounded-memory flow accounting: per-message state lives only while
    /// a message is in flight (hash maps keyed by flow id instead of
    /// O(offered-flows) tables), and [`stardust_sim::FlowStats`] runs in
    /// its sketch mode — counts + a mergeable quantile sketch, no
    /// per-flow records. Required for streaming million-flow scenarios;
    /// the default keeps the exact per-flow table.
    pub bounded_flows: bool,
    /// Master RNG seed.
    pub seed: u64,
}

/// How the egress scheduler arbitrates across traffic classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict priority: class 0 always drains first.
    Strict,
    /// Weighted round robin: `weights[tc]` credits per cycle for class tc.
    Wrr(Vec<u32>),
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            fabric_link_bps: units::gbps(50),
            cell_bytes: 256,
            cell_header_bytes: 8,
            credit_bytes: units::kib(4) as u32,
            packet_packing: true,
            credit_speedup: 0.03,
            host_ports: 4,
            host_port_bps: units::gbps(100),
            num_tcs: 2,
            // High enough that sub-unity utilizations develop their natural
            // M/D/1 queue tails (Fig 9 reaches ~80 cells at 95% load); FCI
            // engages only when the fabric is genuinely oversubscribed.
            fci_threshold_cells: 64,
            fci_decrease: 0.95,
            fci_recover: 0.002,
            fci_min: 0.55,
            fci_hold: SimDuration::from_micros(2),
            egress_hiwat_bytes: 256 * 1024,
            egress_lowat_bytes: 128 * 1024,
            reassembly_timeout: SimDuration::from_millis(1),
            ctrl_latency: SimDuration::from_micros(2),
            spray_rounds_per_shuffle: 4,
            reach_interval: None,
            reach_miss_threshold: 3,
            host_fc: None,
            voq_max_bytes: None,
            low_latency_tc: None,
            sched_policy: SchedPolicy::Strict,
            msg_mtu_bytes: 1_500,
            bounded_flows: false,
            seed: 0xDC_FA_B0_05,
        }
    }
}

impl FabricConfig {
    /// Payload bytes carried per full cell.
    pub fn cell_payload(&self) -> u32 {
        (self.cell_bytes - self.cell_header_bytes) as u32
    }

    /// Fraction of fabric-link bandwidth available to payload after cell
    /// headers (the "raw data utilization" denominator of §6.2).
    pub fn payload_fraction(&self) -> f64 {
        self.cell_payload() as f64 / self.cell_bytes as f64
    }

    /// Sanity checks; call after hand-editing a config.
    pub fn validate(&self) {
        assert!(self.cell_header_bytes < self.cell_bytes);
        assert!(self.credit_bytes >= self.cell_payload());
        assert!(self.credit_speedup >= 0.0 && self.credit_speedup < 0.5);
        assert!(self.fci_min > 0.0 && self.fci_min <= 1.0);
        assert!((0.0..=1.0).contains(&self.fci_decrease));
        assert!(self.egress_lowat_bytes <= self.egress_hiwat_bytes);
        assert!(self.num_tcs >= 1);
        assert!(self.host_ports >= 1);
        if let Some((hi, lo)) = self.host_fc {
            assert!(lo <= hi, "host FC watermarks inverted");
        }
        if let Some(tc) = self.low_latency_tc {
            assert!(tc < self.num_tcs, "low-latency TC out of range");
        }
        assert!(self.msg_mtu_bytes > 0, "zero message MTU");
        if let SchedPolicy::Wrr(w) = &self.sched_policy {
            assert_eq!(w.len(), self.num_tcs as usize, "one WRR weight per TC");
            assert!(w.iter().all(|&x| x > 0), "WRR weights must be positive");
        }
    }

    /// §4.1's minimum-credit-size rule: output bandwidth divided by the
    /// scheduler's credit generation rate. "For a 10Tbps Fabric Adapter,
    /// using 1GHz clock and generating a credit every two clocks, the
    /// minimum credit size will be 10Tbps/(1GHz/2) = 2000B."
    pub fn min_credit_bytes(adapter_bps: u64, clock_hz: u64, clocks_per_credit: u64) -> u64 {
        adapter_bps / (clock_hz / clocks_per_credit) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FabricConfig::default().validate();
    }

    #[test]
    fn cell_payload_fraction() {
        let c = FabricConfig::default();
        assert_eq!(c.cell_payload(), 248);
        assert!((c.payload_fraction() - 248.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn paper_min_credit_example() {
        // §4.1 quotes "10Tbps/(1GHz/2) = 2000B"; dimensional analysis gives
        // 10e12 b/s ÷ 0.5e9 credits/s = 20,000 bits = 2,500 B per credit —
        // the paper's 2000 appears to drop the bit/byte factor ÷8 and use
        // ÷10 instead. We keep the correct arithmetic (2,500 B) and note
        // the discrepancy; either value supports the section's conclusion
        // (minimum credit ≈ a few KB).
        assert_eq!(
            FabricConfig::min_credit_bytes(10_000_000_000_000, 1_000_000_000, 2),
            2_500
        );
    }

    #[test]
    #[should_panic]
    fn bad_watermarks_rejected() {
        let mut c = FabricConfig::default();
        c.egress_lowat_bytes = c.egress_hiwat_bytes + 1;
        c.validate();
    }
}
