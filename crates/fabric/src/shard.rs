//! The deterministic sharded fabric engine.
//!
//! [`ShardedFabricEngine`] runs one [`FabricEngine`] per shard of a
//! [`Partition`] across a configurable number of OS threads, and
//! synchronizes them conservatively: execution proceeds in windows
//! bounded by the partition's **lookahead matrix** (per ordered shard
//! pair, the smallest latency any chain of cross-shard interactions can
//! carry — see [`Partition::matrix`]), with cross-shard events exchanged
//! through lock-free [`Mailboxes`] rings at a barrier between windows.
//! Because
//!
//! 1. every cross-shard event generated inside a window is timestamped
//!    beyond the receiver's window (the per-pair lookahead bound),
//! 2. mailboxes drain in sender-shard order with per-sender FIFO, and
//! 3. every engine event is scheduled under a canonical **content key**
//!    (see `engine::key_of`), so simultaneous events dispatch in the same
//!    order no matter which calendar they entered first,
//!
//! the simulation is a pure function of `(topology, config, workload,
//! seed)` — independent of the shard count, of the thread count, of OS
//! thread scheduling, and bit-identical to the sequential
//! [`FabricEngine`]: the conformance suite asserts equal [`FabricStats`]
//! (histograms, counters and per-flow FCT tables) for 1, 2, 4 and 8
//! shards against the sequential engine.
//!
//! The lookahead is physical: the fabric's FA↔FE wire latency (and the
//! control-plane transit time) gives the classic null-message bound of
//! parallel discrete-event simulation for free — Stardust's own
//! divide-and-conquer argument, applied to its simulator. The matrix
//! sharpens it: on fabrics where non-adjacent shards only interact
//! through intermediaries (dragonfly, Space Shuffle, expanders), each
//! shard's window is bounded by its *actual* constrainers, not the
//! global minimum, so tight local fibers stop throttling distant pairs.
//!
//! See DESIGN.md § "Parallel runtime" for the SPSC mailbox protocol and
//! the full determinism argument.

use crate::config::FabricConfig;
use crate::engine::{FabricEngine, FabricStats, OutItem};
use crate::partition::Partition;
use stardust_sim::{
    CalendarCore, CoreKind, LookaheadMatrix, Mailboxes, ShardClock, SimDuration, SimTime,
};
use stardust_topo::{LinkId, Topology};

/// How the shards execute (results are identical either way — the
/// property suite runs both and compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Barrier-synchronized OS threads — one per shard by default,
    /// fewer with [`ShardedFabricEngine::set_threads`] (the default).
    Threads,
    /// All shards driven round-robin on the calling thread. Useful on
    /// starved machines and for differential tests against the threaded
    /// path; same window/exchange sequence, same results. Equivalent to
    /// `set_threads(1)`.
    Inline,
}

/// A [`FabricEngine`] partitioned over OS threads. See the module docs.
///
/// The public surface mirrors the sequential engine's: workload calls are
/// routed to the owning shard (or fanned out, where state is replicated),
/// and [`ShardedFabricEngine::stats`] folds the per-shard measurements in
/// shard order into the same [`FabricStats`] a sequential run records.
pub struct ShardedFabricEngine<K: CoreKind = CalendarCore> {
    shards: Vec<FabricEngine<K>>,
    part: Partition,
    /// FA index → owning shard (routing table for workload calls).
    shard_of_fa: Vec<u32>,
    mode: ExecMode,
    /// OS threads to drive the shards with (≤ shard count); `None` means
    /// one per shard. Thread `t` drives shards `{i : i mod T == t}`
    /// round-robin inside every window.
    threads: Option<u32>,
    /// Collapse the lookahead matrix to its smallest bound (the scalar
    /// baseline) — a measurement knob, results are identical.
    scalar_windows: bool,
    /// Synchronization rounds executed across all `run_until` calls.
    windows: u64,
    now: SimTime,
}

impl ShardedFabricEngine {
    /// Build a sharded engine on the default calendar-queue core.
    pub fn new(topo: Topology, cfg: FabricConfig, num_shards: u32) -> Self {
        Self::with_core(topo, cfg, num_shards)
    }
}

impl<K: CoreKind> ShardedFabricEngine<K>
where
    FabricEngine<K>: Send,
{
    /// Build a sharded engine over `topo` with `num_shards` shards on
    /// event core `K`. Partitioning is locality-greedy (see
    /// [`Partition::new`]); every shard holds the full topology but only
    /// simulates the nodes it owns.
    pub fn with_core(topo: Topology, cfg: FabricConfig, num_shards: u32) -> Self {
        let plan = std::sync::Arc::new(stardust_topo::RoutePlan::shortest_path(&topo));
        Self::with_plan(topo, cfg, plan, num_shards)
    }

    /// [`Self::with_core`] with a caller-supplied route plan (builders with
    /// non-shortest-path potentials, e.g. Space Shuffle). Shard boundaries
    /// follow the plan's endpoint groups where the grouping can honor
    /// `num_shards` (see [`Partition::with_groups`]).
    pub fn with_plan(
        topo: Topology,
        cfg: FabricConfig,
        plan: std::sync::Arc<stardust_topo::RoutePlan>,
        num_shards: u32,
    ) -> Self {
        let part = Partition::with_groups(&topo, &plan.groups, num_shards, cfg.ctrl_latency);
        assert!(
            part.lookahead < cfg.reassembly_timeout,
            "lookahead must stay below the reassembly timeout"
        );
        // Cross-shard burst-record handoffs are delayed by their pair's
        // closed bound; a bound at or past the reassembly timeout would
        // deliver the record after its own cleanup deadline.
        assert!(
            part.matrix.max_cross_bound() < cfg.reassembly_timeout,
            "pair lookahead bound must stay below the reassembly timeout"
        );
        let shards: Vec<FabricEngine<K>> = (0..num_shards)
            .map(|s| {
                FabricEngine::<K>::with_view(
                    topo.clone(),
                    cfg.clone(),
                    Some(part.view(s)),
                    plan.clone(),
                )
            })
            .collect();
        let shard_of_fa = topo
            .nodes_of_kind(stardust_topo::NodeKind::Edge)
            .iter()
            .map(|n| part.shard_of_node[n.0 as usize])
            .collect();
        ShardedFabricEngine {
            shards,
            part,
            shard_of_fa,
            mode: ExecMode::Threads,
            threads: None,
            scalar_windows: false,
            windows: 0,
            now: SimTime::ZERO,
        }
    }

    /// Switch between threaded and inline execution (identical results).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Cap the number of OS threads driving the shards (identical
    /// results at any setting — window bounds are pure functions of the
    /// reported event times, and a single thread driving all shards is
    /// exactly [`ExecMode::Inline`]). Values above the shard count
    /// clamp; `set_threads(1)` runs on the calling thread with no
    /// spawns.
    pub fn set_threads(&mut self, threads: u32) {
        assert!(threads >= 1, "at least one thread");
        self.threads = Some(threads.min(self.part.num_shards));
    }

    /// The number of OS threads `run_until` will use under
    /// [`ExecMode::Threads`].
    pub fn num_threads(&self) -> u32 {
        match self.mode {
            ExecMode::Inline => 1,
            ExecMode::Threads => self.threads.unwrap_or(self.part.num_shards),
        }
    }

    /// Window by the scalar lookahead (the matrix's smallest bound)
    /// instead of the per-pair matrix — the pre-matrix baseline, kept as
    /// a measurement knob so benchmarks can report how much the matrix
    /// cuts barrier frequency. Results are bit-identical either way;
    /// only [`ShardedFabricEngine::windows_executed`] moves.
    pub fn set_scalar_windows(&mut self, scalar: bool) {
        self.scalar_windows = scalar;
    }

    /// Synchronization rounds (windows, = barrier pairs) executed so far
    /// across all `run_until` calls — the conservative-sync overhead
    /// metric the lookahead matrix exists to shrink. Zero for
    /// single-shard engines (no barriers at all).
    pub fn windows_executed(&self) -> u64 {
        self.windows
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.part.num_shards
    }

    /// The partition in force.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The conservative-synchronization window width.
    pub fn lookahead(&self) -> SimDuration {
        self.part.lookahead
    }

    /// Number of Fabric Adapters.
    pub fn num_fas(&self) -> usize {
        self.shards[0].num_fas()
    }

    /// The configuration in force.
    pub fn config(&self) -> &FabricConfig {
        self.shards[0].config()
    }

    /// Current simulated time (the committed horizon, or the latest
    /// event executed by any shard after a run to exhaustion).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed across all shards. With the same lookahead
    /// this equals the sequential engine's count minus nothing — every
    /// logical event runs on exactly one shard — plus one `BurstOpen`
    /// per cross-shard burst (the record handoff the sequential engine
    /// performs as a direct call).
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_executed()).sum()
    }

    /// The merged measurements, folded in shard order — bit-identical to
    /// a sequential run's [`FabricStats`] (the conformance suite's
    /// subject).
    pub fn stats(&self) -> FabricStats {
        let mut merged = self.shards[0].stats().clone();
        for s in &self.shards[1..] {
            merged.merge(s.stats());
        }
        merged
    }

    /// Delivered-payload utilization over `window` (see
    /// [`FabricEngine::fabric_utilization`]), from the merged stats.
    pub fn fabric_utilization(&self, window: SimDuration) -> f64 {
        let delivered: u64 = self
            .shards
            .iter()
            .map(|s| s.stats().bytes_delivered.get())
            .sum();
        self.shards[0].payload_utilization_of(delivered, window)
    }

    // -- workload wiring (mirrors `FabricEngine`) --------------------------

    /// Inject one packet (see [`FabricEngine::inject`]); routed to the
    /// source FA's shard.
    pub fn inject(
        &mut self,
        at: SimTime,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        bytes: u32,
    ) {
        let s = self.shard_of_fa[src_fa as usize] as usize;
        self.shards[s].inject(at, src_fa, dst_fa, dst_port, tc, bytes);
    }

    /// Add an open-loop CBR flow (see [`FabricEngine::add_cbr_flow`]).
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        rate_bps: u64,
        pkt_bytes: u32,
        start: SimTime,
        stop: SimTime,
    ) {
        let s = self.shard_of_fa[src_fa as usize] as usize;
        self.shards[s].add_cbr_flow(
            src_fa, dst_fa, dst_port, tc, rate_bps, pkt_bytes, start, stop,
        );
    }

    /// Add a finite message flow (see [`FabricEngine::add_message`]).
    /// Offered to every shard — in table mode each registers a record
    /// (the flow tables merge index-wise); in `bounded_flows` mode each
    /// only counts the id and the destination's shard keeps the
    /// in-flight state. Started on the source's shard, finished on the
    /// destination's.
    pub fn add_message(
        &mut self,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        bytes: u64,
        start: SimTime,
    ) -> u32 {
        let mut id = 0;
        for s in &mut self.shards {
            id = s.add_message(src_fa, dst_fa, dst_port, tc, bytes, start);
        }
        id
    }

    /// Put every FA into §6.2 saturation mode (see
    /// [`FabricEngine::saturate_all_to_all`]); each shard saturates the
    /// FAs it owns.
    pub fn saturate_all_to_all(&mut self, packet_bytes: u32, backlog_bytes: u64) {
        for s in &mut self.shards {
            s.saturate_all_to_all(packet_bytes, backlog_bytes);
        }
    }

    /// Fail a link on every shard (owner drops its queued cells; the
    /// destination side stops accepting arrivals).
    pub fn fail_link(&mut self, link: LinkId) {
        for s in &mut self.shards {
            s.fail_link(link);
        }
    }

    /// Restore a previously failed link on every shard.
    pub fn restore_link(&mut self, link: LinkId) {
        for s in &mut self.shards {
            s.restore_link(link);
        }
    }

    /// Inject a §5.10 bit-error process on a link, on every shard.
    pub fn set_link_error_rate(&mut self, link: LinkId, rate: f64) {
        for s in &mut self.shards {
            s.set_link_error_rate(link, rate);
        }
    }

    /// Exclude samples before `at` from distribution statistics.
    pub fn begin_measurement(&mut self, at: SimTime) {
        for s in &mut self.shards {
            s.begin_measurement(at);
        }
    }

    // -- execution ---------------------------------------------------------

    /// Run until `horizon` (events at the horizon included), then commit
    /// it to every shard clock — same semantics as
    /// [`FabricEngine::run_until`], including `SimTime::MAX` = run to
    /// exhaustion.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.shards.len() == 1 {
            self.shards[0].run_until(horizon);
            self.now = if horizon < SimTime::MAX {
                horizon
            } else {
                self.shards[0].now()
            };
            return;
        }
        let threads = self.num_threads() as usize;
        let matrix = if self.scalar_windows {
            LookaheadMatrix::uniform(self.shards.len(), self.part.lookahead)
        } else {
            (*self.part.matrix).clone()
        };
        let clock = ShardClock::with_matrix(matrix, threads);
        let mail: Mailboxes<OutItem> = Mailboxes::new(self.shards.len());
        // Distribute the shards round-robin over the driving threads.
        // One thread is the degenerate case: every shard in one group,
        // driven on the calling thread through the *same* loop — which
        // is why inline and threaded execution agree by construction.
        let mut groups: Vec<Vec<(usize, &mut FabricEngine<K>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, eng) in self.shards.iter_mut().enumerate() {
            groups[i % threads].push((i, eng));
        }
        let rounds = if threads == 1 {
            group_loop(&mut groups[0], &clock, &mail, horizon)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter_mut()
                    .map(|group| {
                        let clock = &clock;
                        let mail = &mail;
                        scope.spawn(move || group_loop(group, clock, mail, horizon))
                    })
                    .collect();
                // Every thread runs the same number of rounds (the stop
                // condition is a barrier-agreed global), so any handle's
                // count is *the* count.
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread panicked"))
                    .max()
                    .unwrap_or(0)
            })
        };
        self.windows += rounds;
        debug_assert!(mail.is_empty(), "mailboxes must drain by the final barrier");
        self.now = if horizon < SimTime::MAX {
            horizon
        } else {
            self.shards.iter().map(|s| s.now()).max().unwrap()
        };
    }

    /// Run for `d` more simulated time (see [`FabricEngine::run_for`]).
    pub fn run_for(&mut self, d: SimDuration) {
        let h = self.now + d;
        self.run_until(h);
    }

    /// Immutable access to one shard's engine (tests/diagnostics).
    pub fn shard(&self, i: usize) -> &FabricEngine<K> {
        &self.shards[i]
    }
}

/// One driving thread's window loop over the shards it owns: report
/// every owned shard's next event, barrier, check the agreed stop
/// condition, execute each owned shard to *its own* matrix window and
/// publish its outgoing cross-shard batches (drained in place — the
/// out-buffers keep their capacity across windows), barrier, drain each
/// owned shard's inboxes into recycled buffers and deliver, repeat.
///
/// Window bounds are pure functions of the reported event times, so the
/// wall-clock interleaving of the threads never shows in the results;
/// and every delivered event is strictly beyond its receiver's executed
/// window (the conservative guarantee), so windows only ever move
/// forward.
fn group_loop<K: CoreKind>(
    group: &mut [(usize, &mut FabricEngine<K>)],
    clock: &ShardClock,
    mail: &Mailboxes<OutItem>,
    horizon: SimTime,
) -> u64 {
    let mut rounds = 0u64;
    let shards = mail.shards();
    // Recycled inbox buffers, one set (per source shard) per owned
    // shard: `deliver` drains them, so steady-state windows reuse their
    // capacity instead of allocating.
    let mut inboxes: Vec<Vec<Vec<OutItem>>> = group
        .iter()
        .map(|_| (0..shards).map(|_| Vec::new()).collect())
        .collect();
    loop {
        for (i, eng) in group.iter() {
            clock.report(*i, eng.next_event_time());
        }
        clock.sync();
        if clock.done(horizon) {
            break;
        }
        rounds += 1;
        for (i, eng) in group.iter_mut() {
            let wend = clock.window_for(*i, horizon).expect("not done");
            eng.run_until(wend);
            mail.publish_from(*i, eng.outbox_mut());
        }
        clock.finish_window();
        for ((i, eng), inbox) in group.iter_mut().zip(&mut inboxes) {
            mail.take_to_into(*i, inbox);
            for batch in inbox.iter_mut() {
                eng.deliver(batch);
            }
        }
    }
    // Commit the horizon so back-to-back `run_for` calls cover exactly
    // their span (mirrors the sequential `run_until` contract).
    if horizon < SimTime::MAX {
        for (_, eng) in group.iter_mut() {
            eng.run_until(horizon);
        }
    }
    rounds
}
