//! Topology partitioning for the sharded fabric engine.
//!
//! The partitioner assigns every node of a fabric topology to one of `S`
//! shards and derives the conservative-synchronization **lookahead**: the
//! smallest latency any cross-shard interaction can carry. Two event
//! families cross shards:
//!
//! * cells and reachability messages, delayed by the **fiber propagation**
//!   of the link they traverse;
//! * credit-loop control messages (request/credit), delayed by the
//!   configured control-plane transit latency.
//!
//! The lookahead is therefore `min(ctrl_latency, min propagation over
//! links whose endpoints land in different shards)`. Keeping topologically
//! close nodes together directly buys simulation throughput: in the
//! paper's two-tier shapes the FA↔aggregation fibers are short and the
//! aggregation↔spine fibers long, so a pod-aligned partition is windowed
//! by the long fibers instead of the short ones.
//!
//! The assignment itself is locality-greedy: Fabric Adapters split into
//! `S` contiguous, balanced ranges (FA index order — pods are contiguous
//! in every builder in `stardust-topo`); Fabric Elements join, level by
//! level, the shard that owns **all** of their lower-tier neighbors (an
//! aggregation element whose whole pod lives in one shard joins it), and
//! elements whose children straddle shards — the spine — spread
//! round-robin for balance.

use stardust_sim::link::fiber_delay;
use stardust_sim::{LookaheadMatrix, SimDuration};
use stardust_topo::{NodeKind, Topology};
use std::sync::Arc;

/// A shard assignment for every node of a topology, plus the lookahead it
/// admits. Build with [`Partition::new`].
#[derive(Debug, Clone)]
pub struct Partition {
    /// Number of shards.
    pub num_shards: u32,
    /// NodeId → owning shard.
    pub shard_of_node: Arc<Vec<u32>>,
    /// The scalar conservative-synchronization window: no cross-shard
    /// event carries less latency than this (the smallest entry of
    /// [`Partition::matrix`]).
    pub lookahead: SimDuration,
    /// Per-ordered-shard-pair bounds (min-plus closure over control
    /// latency on every pair plus the actual cross-shard fibers): the
    /// matrix clock windows each shard by the min over its *actual*
    /// constrainers, so non-adjacent shards stop throttling each other.
    pub matrix: Arc<LookaheadMatrix>,
}

/// One shard's view of a [`Partition`] — what a per-shard engine needs to
/// route events: its own id, the global node assignment, and the
/// lookahead matrix used for cross-shard burst-record handoff.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// This shard's id.
    pub shard: u32,
    /// Total shard count.
    pub num_shards: u32,
    /// NodeId → owning shard (shared with the partition).
    pub shard_of_node: Arc<Vec<u32>>,
    /// The partition's scalar lookahead (smallest matrix entry).
    pub lookahead: SimDuration,
    /// The partition's per-pair bounds (shared with the partition).
    pub matrix: Arc<LookaheadMatrix>,
}

impl Partition {
    /// Partition `topo` into `num_shards` shards (1 ≤ `num_shards` ≤
    /// number of edge nodes). `ctrl_latency` is the control-plane transit
    /// latency of the engine configuration that will run on it.
    pub fn new(topo: &Topology, num_shards: u32, ctrl_latency: SimDuration) -> Self {
        let fas = topo.nodes_of_kind(NodeKind::Edge);
        assert!(num_shards >= 1, "at least one shard");
        assert!(
            (num_shards as usize) <= fas.len(),
            "more shards ({num_shards}) than Fabric Adapters ({})",
            fas.len()
        );
        let s = num_shards as u64;
        let mut shard_of_node = vec![u32::MAX; topo.num_nodes()];
        // Fabric Adapters: balanced contiguous ranges in FA-index order.
        for (i, &n) in fas.iter().enumerate() {
            shard_of_node[n.0 as usize] = (i as u64 * s / fas.len() as u64) as u32;
        }
        Self::finish(topo, shard_of_node, num_shards, ctrl_latency)
    }

    /// Partition guided by a [`RoutePlan`]'s endpoint grouping (pods on
    /// Clos shapes, per-switch blocks on flat fabrics): whole groups map
    /// onto shards in group order, so topologically adjacent endpoints —
    /// and, via adoption below, the fabric elements over them — stay
    /// together. Falls back to the generic contiguous split of
    /// [`Partition::new`] when the grouping can't honor `num_shards`
    /// (more shards than groups) or doesn't cover every edge node.
    ///
    /// On the Clos builders the groups are the contiguous equal-size
    /// pods, so at any shard count this reproduces `Partition::new`
    /// exactly — which is what keeps the pinned sharded-vs-sequential
    /// conformance results unchanged.
    ///
    /// [`RoutePlan`]: stardust_topo::RoutePlan
    pub fn with_groups(
        topo: &Topology,
        groups: &[Vec<stardust_topo::NodeId>],
        num_shards: u32,
        ctrl_latency: SimDuration,
    ) -> Self {
        let fas = topo.nodes_of_kind(NodeKind::Edge);
        assert!(num_shards >= 1, "at least one shard");
        assert!(
            (num_shards as usize) <= fas.len(),
            "more shards ({num_shards}) than Fabric Adapters ({})",
            fas.len()
        );
        let covered: usize = groups.iter().map(Vec::len).sum();
        if (num_shards as usize) > groups.len() || covered != fas.len() {
            return Self::new(topo, num_shards, ctrl_latency);
        }
        let (s, g) = (num_shards as u64, groups.len() as u64);
        let mut shard_of_node = vec![u32::MAX; topo.num_nodes()];
        for (gi, group) in groups.iter().enumerate() {
            let shard = (gi as u64 * s / g) as u32;
            for &n in group {
                if shard_of_node[n.0 as usize] != u32::MAX {
                    // Duplicate membership: grouping is unusable.
                    return Self::new(topo, num_shards, ctrl_latency);
                }
                shard_of_node[n.0 as usize] = shard;
            }
        }
        Self::finish(topo, shard_of_node, num_shards, ctrl_latency)
    }

    /// Shared tail of the constructors: fabric elements adopt shards
    /// level by level, then the lookahead is derived.
    fn finish(
        topo: &Topology,
        mut shard_of_node: Vec<u32>,
        num_shards: u32,
        ctrl_latency: SimDuration,
    ) -> Self {
        // Fabric Elements, level by level: adopt the shard owning all
        // lower-level neighbors, else round-robin. On flat fabrics the
        // switches' only lower-level neighbors are their own endpoints,
        // so each switch adopts its endpoint block's shard.
        let mut fes = topo.nodes_of_kind(NodeKind::Fabric);
        fes.sort_by_key(|&n| (topo.node(n).level, n.0));
        let mut spread = 0u32;
        for &fe in &fes {
            let level = topo.node(fe).level;
            let mut adopt: Option<u32> = None;
            let mut unanimous = true;
            for (_, peer) in topo.neighbors(fe) {
                if topo.node(peer).level >= level {
                    continue;
                }
                let ps = shard_of_node[peer.0 as usize];
                debug_assert_ne!(ps, u32::MAX, "lower level not yet assigned");
                match adopt {
                    None => adopt = Some(ps),
                    Some(a) if a == ps => {}
                    Some(_) => {
                        unanimous = false;
                        break;
                    }
                }
            }
            shard_of_node[fe.0 as usize] = match (unanimous, adopt) {
                (true, Some(a)) => a,
                _ => {
                    let a = spread % num_shards;
                    spread += 1;
                    a
                }
            };
        }
        // Any remaining kinds (the engine rejects Host nodes, but stay
        // total): shard 0.
        for sh in shard_of_node.iter_mut() {
            if *sh == u32::MAX {
                *sh = 0;
            }
        }

        // Per-pair direct bounds. Credit-loop control messages flow
        // between any two FAs at the configured transit latency, so
        // every ordered pair is seeded at `ctrl_latency`; cells and
        // reachability messages cross shards only along actual fibers,
        // at the fiber's propagation delay (both directions — links are
        // bidirectional). The min-plus closure then accounts for
        // multi-hop interaction chains through intermediate shards.
        let s = num_shards as usize;
        let mut direct: Vec<Option<SimDuration>> = vec![None; s * s];
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    direct[a * s + b] = Some(ctrl_latency);
                }
            }
        }
        for l in topo.link_ids() {
            let link = topo.link(l);
            let (a, b) = (link.end(0), link.end(1));
            let sa = shard_of_node[a.0 as usize] as usize;
            let sb = shard_of_node[b.0 as usize] as usize;
            if sa != sb {
                let d = fiber_delay(link.meters as u64);
                assert!(
                    d > SimDuration::ZERO,
                    "zero-latency cross-shard link defeats conservative sync"
                );
                for (x, y) in [(sa, sb), (sb, sa)] {
                    let e = &mut direct[x * s + y];
                    *e = Some(e.map_or(d, |cur| cur.min(d)));
                }
            }
        }
        let matrix = LookaheadMatrix::from_direct(s, &direct);
        // The scalar lookahead keeps its historical meaning — the
        // smallest latency *any* cross-shard interaction carries — which
        // is exactly the matrix's smallest bound (the closure cannot go
        // below its smallest direct entry). Single shard: nothing ever
        // crosses, so the ctrl latency stands in.
        let lookahead = matrix.min_bound().unwrap_or(ctrl_latency);
        assert!(
            lookahead > SimDuration::ZERO,
            "zero-latency cross-shard link defeats conservative sync"
        );
        Partition {
            num_shards,
            shard_of_node: Arc::new(shard_of_node),
            lookahead,
            matrix: Arc::new(matrix),
        }
    }

    /// The view handed to shard `shard`'s engine.
    pub fn view(&self, shard: u32) -> ShardView {
        assert!(shard < self.num_shards);
        ShardView {
            shard,
            num_shards: self.num_shards,
            shard_of_node: self.shard_of_node.clone(),
            lookahead: self.lookahead,
            matrix: self.matrix.clone(),
        }
    }

    /// Number of edge nodes (Fabric Adapters) owned by each shard.
    pub fn fa_counts(&self, topo: &Topology) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards as usize];
        for n in topo.nodes_of_kind(NodeKind::Edge) {
            counts[self.shard_of_node[n.0 as usize] as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_topo::builders::{three_tier, two_tier, ThreeTierParams, TwoTierParams};

    #[test]
    fn two_tier_pod_aligned_partition_uses_long_fibers() {
        // paper_scaled(4): 64 FAs, 4 pods of 16; near 100 m, far 100 m —
        // use a custom shape with short near fibers to see the effect.
        let mut p = TwoTierParams::paper_scaled(4);
        p.near_meters = 10; // 50 ns
        p.far_meters = 100; // 500 ns
        let tt = two_tier(p);
        let part = Partition::new(&tt.topo, 4, SimDuration::from_micros(2));
        // 4 shards over 4 pods: every FA↔aggregation link stays inside
        // one shard, so the lookahead is the far-fiber 500 ns.
        assert_eq!(part.lookahead, SimDuration::from_nanos(500));
        let counts = part.fa_counts(&tt.topo);
        assert_eq!(counts, vec![16; 4]);
        // Aggregation FEs adopted their pod's shard.
        for (i, &fe) in tt.t1.iter().enumerate() {
            let pod = i / (tt.t1.len() / 4);
            assert_eq!(part.shard_of_node[fe.0 as usize], pod as u32);
        }
    }

    #[test]
    fn sub_pod_shards_fall_back_to_short_fibers() {
        let mut p = TwoTierParams::paper_scaled(4);
        p.near_meters = 10;
        p.far_meters = 100;
        let tt = two_tier(p);
        // 8 shards over 4 pods: pods split, near links cross shards.
        let part = Partition::new(&tt.topo, 8, SimDuration::from_micros(2));
        assert_eq!(part.lookahead, SimDuration::from_nanos(50));
        assert_eq!(part.fa_counts(&tt.topo), vec![8; 8]);
    }

    #[test]
    fn ctrl_latency_caps_the_lookahead() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let ctrl = SimDuration::from_nanos(80);
        let part = Partition::new(&tt.topo, 2, ctrl);
        assert_eq!(part.lookahead, ctrl);
    }

    #[test]
    fn single_shard_owns_everything() {
        let tt = three_tier(ThreeTierParams::small());
        let part = Partition::new(&tt.topo, 1, SimDuration::from_micros(2));
        assert!(part.shard_of_node.iter().all(|&s| s == 0));
        assert_eq!(part.lookahead, SimDuration::from_micros(2));
    }

    #[test]
    fn three_tier_partition_is_balanced_and_total() {
        let tt = three_tier(ThreeTierParams::small());
        for shards in [2u32, 4] {
            let part = Partition::new(&tt.topo, shards, SimDuration::from_micros(2));
            assert!(part.shard_of_node.iter().all(|&s| s < shards));
            let counts = part.fa_counts(&tt.topo);
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced FA split {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn too_many_shards_rejected() {
        let tt = three_tier(ThreeTierParams::small());
        let _ = Partition::new(&tt.topo, 17, SimDuration::from_micros(2));
    }

    #[test]
    fn plan_groups_reproduce_contiguous_split_on_clos() {
        use stardust_topo::RoutePlan;
        let tt = two_tier(TwoTierParams::paper_scaled(4));
        let plan = RoutePlan::shortest_path(&tt.topo);
        let ctrl = SimDuration::from_micros(2);
        for shards in [1u32, 2, 4, 8] {
            let generic = Partition::new(&tt.topo, shards, ctrl);
            let grouped = Partition::with_groups(&tt.topo, &plan.groups, shards, ctrl);
            assert_eq!(
                generic.shard_of_node, grouped.shard_of_node,
                "{shards} shards: pod grouping must equal the contiguous split"
            );
            assert_eq!(generic.lookahead, grouped.lookahead);
        }
    }

    #[test]
    fn flat_fabric_groups_keep_switch_blocks_together() {
        use stardust_topo::{dragonfly, DragonflyParams, RoutePlan};
        let df = dragonfly(DragonflyParams {
            fas_per_router: 2,
            ..DragonflyParams::zoo()
        });
        let plan = RoutePlan::shortest_path(&df.topo);
        let part = Partition::with_groups(&df.topo, &plan.groups, 4, SimDuration::from_micros(2));
        // Both FAs of a router land on the router's shard.
        for (r, &router) in df.routers.iter().enumerate() {
            let s0 = part.shard_of_node[df.fas[2 * r].0 as usize];
            let s1 = part.shard_of_node[df.fas[2 * r + 1].0 as usize];
            assert_eq!(s0, s1);
            assert_eq!(part.shard_of_node[router.0 as usize], s0);
        }
        let counts = part.fa_counts(&df.topo);
        assert_eq!(counts, vec![10; 4]);
    }

    #[test]
    fn clos_pod_alignment_yields_a_uniform_matrix() {
        // Pod-aligned two-tier Clos: the only cross-shard fibers are the
        // agg↔spine links, the spine spreads round-robin over all
        // shards, and the spine reaches every pod — so every shard pair
        // sees the same 500 ns direct fiber and the matrix collapses to
        // the scalar. This is the baseline the zoo fabrics improve on.
        let mut p = TwoTierParams::paper_scaled(4);
        p.near_meters = 10;
        p.far_meters = 100;
        let tt = two_tier(p);
        let part = Partition::new(&tt.topo, 4, SimDuration::from_micros(2));
        assert_eq!(part.matrix.min_bound(), Some(part.lookahead));
        assert_eq!(part.matrix.max_cross_bound(), part.lookahead);
    }

    #[test]
    fn zoo_topology_produces_a_non_uniform_matrix() {
        use stardust_topo::{dragonfly, DragonflyParams, RoutePlan};
        // 4 shards over the 5-group zoo dragonfly: groups straddle shard
        // boundaries, so adjacent shards are bounded by the 25 ns local
        // fibers while non-adjacent ones only interact through global
        // links and multi-shard chains — strictly wider bounds.
        let df = dragonfly(DragonflyParams::zoo());
        let plan = RoutePlan::shortest_path(&df.topo);
        let part = Partition::with_groups(&df.topo, &plan.groups, 4, SimDuration::from_micros(2));
        let m = &part.matrix;
        assert_eq!(m.min_bound(), Some(part.lookahead));
        assert!(
            m.max_cross_bound() > part.lookahead,
            "zoo matrix collapsed to the scalar lookahead {:?}",
            part.lookahead
        );
        // Every pair is bounded (control messages connect all pairs).
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(m.bound(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn unusable_grouping_falls_back_to_generic() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let ctrl = SimDuration::from_micros(2);
        // More shards than groups, and a grouping that misses FAs: both
        // must silently fall back to the generic contiguous split.
        let partial = vec![vec![tt.fas[0]], vec![tt.fas[1]]];
        let a = Partition::with_groups(&tt.topo, &partial, 2, ctrl);
        let b = Partition::new(&tt.topo, 2, ctrl);
        assert_eq!(a.shard_of_node, b.shard_of_node);
        let four_groups: Vec<Vec<_>> = tt.fas.chunks(4).map(|c| c.to_vec()).collect();
        let c = Partition::with_groups(&tt.topo, &four_groups, 8, ctrl);
        let d = Partition::new(&tt.topo, 8, ctrl);
        assert_eq!(c.shard_of_node, d.shard_of_node);
    }
}
