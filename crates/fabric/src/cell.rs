//! Cells, bursts and packets — the data units of the fabric.
//!
//! "The Fabric Adapter collects multiple packets and chops them into
//! bounded-size (e.g., 256B) cells. The cells hold a small header including
//! the destination and a sequence number that allows reassembling cells
//! into packets." (§3.2)
//!
//! A **burst** is the credit-worth of packets dequeued from one VOQ by one
//! credit grant; packet packing (§3.4) treats the whole burst as a byte
//! stream, so cells may carry multiple packets or packet fragments. Cells
//! of a burst are sequence-numbered; the destination reassembles the burst
//! when all cells arrive and only then releases its packets.

use stardust_sim::SimTime;

/// Globally unique packet identity (assigned at injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u64);

/// Sentinel for [`Packet::flow`]: the packet belongs to no finite message
/// flow (single injections, CBR and saturation traffic).
pub const NO_FLOW: u32 = u32::MAX;

/// Globally unique burst identity (assigned at packing time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BurstId(pub u64);

/// A packet as seen by the fabric: opaque payload of `bytes` with
/// addressing metadata. Stardust is protocol agnostic (§1) — nothing here
/// parses further than a ToR would.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Globally unique packet id (injection order).
    pub id: PacketId,
    /// Source Fabric Adapter index.
    pub src_fa: u32,
    /// Destination Fabric Adapter index.
    pub dst_fa: u32,
    /// Destination (host-facing) port on the destination FA.
    pub dst_port: u8,
    /// Traffic class (0 = highest priority).
    pub tc: u8,
    /// Packet length in bytes.
    pub bytes: u32,
    /// Finite message flow this packet belongs to ([`NO_FLOW`] if none).
    /// Carried with the packet so flow completion is detected at the
    /// destination without any shared source↔destination side table —
    /// the property that lets source and destination live on different
    /// engine shards.
    pub flow: u32,
    /// Injection time at the source FA ingress.
    pub injected_at: SimTime,
}

/// A fixed-size cell on a fabric link.
///
/// The real header carries destination FA + sequence number; we carry the
/// simulation-level identifiers needed for forwarding, reassembly and
/// measurement. `wire_bytes` is what occupies the serializer (header +
/// payload, padded tail cells excluded — the tail cell is genuinely short
/// on the wire, §5.3).
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Source Fabric Adapter index.
    pub src_fa: u32,
    /// Destination Fabric Adapter index.
    pub dst_fa: u32,
    /// Burst this cell belongs to.
    pub burst: BurstId,
    /// Sequence number within the burst.
    pub seq: u16,
    /// Bytes on the wire (cell header + carried payload).
    pub wire_bytes: u16,
    /// Fabric Congestion Indication, piggybacked by congested Fabric
    /// Elements (§4.2) and read by the destination FA's credit scheduler.
    pub fci: bool,
    /// When the source FA handed the cell to its uplink (for the Figure 9
    /// fabric-traversal latency distribution).
    pub sent_at: SimTime,
}

/// Book-keeping for one in-flight burst, kept by the engine and consumed
/// by the destination FA's reassembly stage.
#[derive(Debug, Clone)]
pub struct Burst {
    /// Burst id, unique per source FA.
    pub id: BurstId,
    /// Source Fabric Adapter index.
    pub src_fa: u32,
    /// Destination Fabric Adapter index.
    pub dst_fa: u32,
    /// Destination host port on the destination FA.
    pub dst_port: u8,
    /// Traffic class.
    pub tc: u8,
    /// The packets packed into this burst, in order.
    pub packets: Vec<Packet>,
    /// Total cells the burst was chopped into.
    pub n_cells: u16,
    /// Cells received so far at the destination.
    pub received: u16,
    /// Packing time (for reassembly-timeout accounting).
    pub packed_at: SimTime,
}

impl Burst {
    /// Total payload bytes across packets.
    pub fn payload_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.bytes as u64).sum()
    }

    /// True once every cell has arrived.
    pub fn complete(&self) -> bool {
        self.received == self.n_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            id: PacketId(1),
            src_fa: 0,
            dst_fa: 1,
            dst_port: 0,
            tc: 0,
            bytes,
            flow: NO_FLOW,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn burst_accounting() {
        let mut b = Burst {
            id: BurstId(7),
            src_fa: 0,
            dst_fa: 1,
            dst_port: 0,
            tc: 0,
            packets: vec![pkt(1000), pkt(500)],
            n_cells: 7,
            received: 0,
            packed_at: SimTime::ZERO,
        };
        assert_eq!(b.payload_bytes(), 1500);
        assert!(!b.complete());
        b.received = 7;
        assert!(b.complete());
    }
}
