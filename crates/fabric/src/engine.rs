//! The Stardust fabric network engine.
//!
//! A deterministic discrete-event simulation of a whole Stardust network:
//! Fabric Adapters at the edge (VOQs, credit schedulers, packing,
//! spraying, reassembly) and Fabric Elements in the fabric (cell
//! crossbars with shallow output queues, FCI marking, reachability
//! tables), connected over a `stardust-topo` topology.
//!
//! The engine is the instrument behind the paper's §6.2 two-tier
//! simulation (latency and queue-size distributions, Figure 9), the §5.4
//! incast-absorption argument, the §5.2 push-vs-pull comparison and the
//! §5.9 self-healing experiments.

use crate::cell::{Burst, BurstId, Cell, Packet, PacketId, NO_FLOW};
use crate::config::FabricConfig;
use crate::packing::pack_burst;
use crate::partition::ShardView;
use crate::reach::ReachTable;
use crate::sched::{PortScheduler, SchedVoq};
use crate::spray::Sprayer;
use crate::voq::{Voq, VoqKey};
use stardust_sim::link::fiber_delay;
use stardust_sim::units::serialization_time;
use stardust_sim::{
    CalendarCore, CoreKind, Counter, DetRng, EventCore, FlowStats, Histogram, ScheduledEvent,
    SimDuration, SimTime,
};
use stardust_topo::{LinkId, NodeId, NodeKind, RoutePlan, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Error rate above which a link self-declares faulty on its
/// reachability cells (§5.10). Real silicon uses FEC/BER counters; any
/// injected error process above this is treated as a faulty link.
const FAULTY_BER_THRESHOLD: f64 = 0.01;

/// One port's reachability view in [`FabricEngine::reach_snapshot`]:
/// `(up, good_streak, last_heard, advertised FAs)`.
pub type ReachPortSnapshot = (bool, u32, SimTime, Vec<u32>);

/// [`FabricEngine::eligible_dir_snapshot`]'s shape: per device (FAs
/// then FEs), per destination FA, the eligible out-direction indices.
pub type EligibilitySnapshot = Vec<Vec<Vec<u32>>>;

/// Index of an in-flight cell in the engine's cell slab. Cells travel
/// through the event queue and link FIFOs by reference so the hot
/// `Ev::CellArrive` variant stays 8 bytes instead of carrying the whole
/// `Cell` by value.
type CellRef = u32;

/// Engine events. Kept deliberately small (see `ev_stays_small` test):
/// every event is moved several times through the calendar queue, so the
/// large payloads (cells, packets) live out-of-line.
///
/// `pub(crate)` (not `pub`): the sharded driver in [`crate::shard`]
/// transports these between shard engines.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A cell finished serializing on a link direction.
    TxDone { dir: u32 },
    /// A cell arrived at the far end of a link direction.
    CellArrive { dir: u32, cell: CellRef },
    /// VOQ demand announcement reaching the destination's scheduler.
    CtrlRequest {
        dst_fa: u32,
        port: u8,
        tc: u8,
        src_fa: u32,
        bytes: u64,
    },
    /// A credit grant reaching the source FA.
    CtrlCredit { src_fa: u32, key: VoqKey },
    /// Per-port credit pacing tick at a destination FA.
    CreditTick { fa: u32, port: u8 },
    /// A packet finished transmitting on a host-facing egress port.
    PortTxDone { fa: u32, port: u8 },
    /// Workload packet arrival at a source FA (boxed: injection is not a
    /// steady-state hot path, and inlining the packet would double the
    /// size of every event).
    Inject { pkt: Box<Packet> },
    /// Periodic reachability advertisement + expiry at a node.
    ReachTick { node: NodeId },
    /// A reachability advertisement arriving at `node` on local `port`.
    /// Carries the sender's full reach; the receiver filters it against
    /// the route plan's candidate set for the reverse direction. `faulty`
    /// carries the sender's self-assessment of the link (§5.10).
    ReachMsg {
        node: NodeId,
        port: u16,
        fas: Arc<Vec<u32>>,
        faulty: bool,
    },
    /// A burst's reassembly record arriving at the destination FA's
    /// shard, sent at packing time one lookahead ahead of the burst's
    /// first cell (cross-shard bursts only — a same-shard burst record is
    /// installed directly at packing time, which is observably identical
    /// because nothing reads the record before the first cell arrives).
    BurstOpen { burst: Box<Burst> },
    /// Reassembly deadline for a burst.
    BurstTimeout { burst: BurstId },
    /// Next packet of a constant-bit-rate flow.
    FlowTick { flow: u32 },
    /// A finite message flow arriving at its source FA ingress.
    MsgStart { flow: u32 },
}

/// Pack a rank and a payload into one canonical ordering key.
const fn key(rank: u64, payload: u64) -> u64 {
    (rank << 56) | (payload & ((1u64 << 56) - 1))
}

/// The canonical same-timestamp ordering key of an event — a pure
/// function of the event's **content**, never of scheduling order.
///
/// This is the heart of the deterministic sharded engine: all engine
/// events go through [`EventCore::schedule_keyed`] with this key, so the
/// dispatch order of simultaneous events is `(time, key)` in the
/// sequential engine and in every shard alike, regardless of which order
/// the events entered which calendar. The key is collision-safe by
/// construction:
///
/// * events whose order *matters* (they touch the same entity) differ in
///   key — per-direction events are unique per `(time, dir)` (a serial
///   link emits at most one cell per instant), per-port timer events are
///   unique per `(time, fa, port)`, and so on;
/// * events that *can* collide (two `CtrlRequest`s from the same source
///   VOQ in one instant) commute: the scheduler adds their byte counts
///   either way, and same-key events keep sender-FIFO order besides.
fn key_of(ev: &Ev) -> u64 {
    match ev {
        Ev::TxDone { dir } => key(0, *dir as u64),
        Ev::CellArrive { dir, .. } => key(1, *dir as u64),
        Ev::BurstOpen { burst } => key(2, burst.id.0),
        Ev::CtrlRequest {
            dst_fa,
            port,
            tc,
            src_fa,
            ..
        } => key(
            3,
            ((*dst_fa as u64) << 36)
                | ((*port as u64) << 28)
                | ((*tc as u64) << 20)
                | *src_fa as u64,
        ),
        Ev::CtrlCredit { src_fa, key: k } => key(
            4,
            ((*src_fa as u64) << 36)
                | ((k.dst_fa as u64) << 16)
                | ((k.dst_port as u64) << 8)
                | k.tc as u64,
        ),
        Ev::CreditTick { fa, port } => key(5, ((*fa as u64) << 8) | *port as u64),
        Ev::PortTxDone { fa, port } => key(6, ((*fa as u64) << 8) | *port as u64),
        Ev::Inject { pkt } => key(7, pkt.id.0),
        Ev::ReachTick { node } => key(8, node.0 as u64),
        Ev::ReachMsg { node, port, .. } => key(9, ((node.0 as u64) << 16) | *port as u64),
        Ev::BurstTimeout { burst } => key(10, burst.0),
        Ev::FlowTick { flow } => key(11, *flow as u64),
        Ev::MsgStart { flow } => key(12, *flow as u64),
    }
}

/// A cross-shard event in transit: scheduled by one shard, delivered into
/// another shard's calendar at a barrier. Cells travel by value (the cell
/// slab is shard-local); everything else is the event itself.
#[derive(Debug)]
pub(crate) enum OutPayload {
    /// A routable event (control messages, reachability, burst records).
    Ev(Ev),
    /// A cell arriving on `dir` at the destination shard.
    Cell { dir: u32, cell: Cell },
}

/// One mailbox item: the absolute fire time plus the payload.
#[derive(Debug)]
pub(crate) struct OutItem {
    pub(crate) at: SimTime,
    pub(crate) payload: OutPayload,
}

/// A constant-bit-rate open-loop flow (used by the push-vs-pull and
/// incast experiments). `Copy` so per-tick reads never allocate.
#[derive(Debug, Clone, Copy)]
struct CbrFlow {
    src_fa: u32,
    dst_fa: u32,
    dst_port: u8,
    tc: u8,
    pkt_bytes: u32,
    interval: SimDuration,
    stop: SimTime,
}

/// Outcome of FA ingress admission (see `FabricEngine::admit_at_ingress`).
enum Ingress {
    /// Joined a VOQ; the payload carries the bytes to announce to the
    /// destination scheduler.
    Queued(u64),
    /// §5.6 low-latency class: packed and sprayed immediately, no demand
    /// announcement.
    Bypassed,
    /// §3.1 VOQ-cap drop.
    Dropped,
}

/// A finite message flow (Fig 10 FCT workloads): `bytes` offered to the
/// source FA at a start time, segmented into MTU-sized packets through the
/// ordinary VOQ → credit → packing → spray path, finished when the last
/// byte leaves the destination egress wire. `Copy` so the start handler
/// never allocates for the flow descriptor.
#[derive(Debug, Clone, Copy)]
struct MsgFlow {
    src_fa: u32,
    dst_fa: u32,
    dst_port: u8,
    tc: u8,
    bytes: u64,
}

/// Destination-side countdown of one in-flight streamed message.
#[derive(Debug)]
struct StreamMsg {
    remaining: u64,
    start: SimTime,
}

/// Bookkeeping behind [`FabricEngine::add_message`], in one of two modes.
#[derive(Debug)]
enum MsgBook {
    /// Default: O(offered-flows) indexed tables, pairing with
    /// [`FlowStats`]'s exact per-flow table.
    Table {
        msgs: Vec<MsgFlow>,
        /// Undelivered payload bytes per flow (completion detection,
        /// maintained at the flow's destination FA — packets carry their
        /// flow id, so no source↔destination side table is needed).
        remaining: Vec<u64>,
    },
    /// `cfg.bounded_flows`: per-message state lives only while the
    /// message is in flight. The source side holds a `pending`
    /// descriptor from offer until `MsgStart`'s one-shot segmentation
    /// frees it; the destination side counts `active` remaining bytes
    /// until the last byte leaves the egress wire. Both maps are keyed
    /// by flow id and **never iterated**, so hash order cannot leak into
    /// event order — determinism is untouched. (A message clipped by a
    /// VOQ-cap drop never completes and its `active` entry persists,
    /// matching the table mode's forever-unfinished record.)
    Stream {
        /// Next flow id. Every shard counts every offer, so ids agree
        /// across shards without any shared table.
        next_id: u32,
        // det-lint: allow(unordered-iter, keyed by flow id via get/entry/remove only; never iterated)
        pending: HashMap<u32, MsgFlow>,
        // det-lint: allow(unordered-iter, keyed by flow id via get/entry/remove only; never iterated)
        active: HashMap<u32, StreamMsg>,
    },
}

/// One direction of a fabric link: a FIFO of cells plus the serializer.
#[derive(Debug)]
struct DirState {
    up: bool,
    /// Per-cell corruption probability (§5.10 link-error injection).
    error_rate: f64,
    rate_bps: u64,
    prop: SimDuration,
    queue: std::collections::VecDeque<CellRef>,
    in_service: Option<CellRef>,
    /// Destination node of this direction.
    dst_node: NodeId,
    /// Port index of this link within the destination node's link list.
    dst_port_index: u16,
    /// True when the source node is a Fabric Element and the destination
    /// is a Fabric Adapter — the paper's "last stage of the network
    /// fabric", whose queue distribution Figure 9 plots.
    last_stage: bool,
    /// True when the source node is a Fabric Element (any stage).
    fe_source: bool,
}

impl DirState {
    fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }
}

/// Host-facing egress port state on a Fabric Adapter.
#[derive(Debug)]
struct PortState {
    sched: PortScheduler,
    egress_bytes: u64,
    tx_queue: std::collections::VecDeque<Packet>,
    tx_busy: bool,
}

/// Saturation-mode configuration (Fig 9 style open-loop backlog).
#[derive(Debug, Clone)]
struct SatState {
    packet_bytes: u32,
    backlog_bytes: u64,
    /// (dst_fa, dst_port, tc) targets this FA keeps backlogged.
    targets: Vec<(u32, u8, u8)>,
}

/// Fabric Adapter runtime state.
struct FaState {
    node: NodeId,
    /// Uplink links, in port order.
    uplinks: Vec<LinkId>,
    /// Outgoing direction index per uplink port.
    out_dirs: Vec<u32>,
    // det-lint: allow(unordered-iter, keyed access only; the scheduler walks VOQs via its own sorted SchedVoq book, never this map)
    voqs: HashMap<VoqKey, Voq>,
    /// Cached sprayers per destination FA, tagged with the reach table
    /// generation they were built against.
    // det-lint: allow(unordered-iter, per-destination cache hit by key at spray time; never iterated)
    sprayers: HashMap<u32, (u64, Sprayer)>,
    reach: ReachTable,
    ports: Vec<PortState>,
    sat: Option<SatState>,
    /// Per-FA counter behind runtime-minted [`PacketId`]s (CBR ticks,
    /// message segmentation, saturation refill). Namespacing ids by
    /// source FA keeps them globally unique **and** identical between the
    /// sequential engine and any sharding, where a global counter would
    /// depend on the interleaving of unrelated FAs.
    next_packet: u64,
    /// Per-FA counter behind [`BurstId`]s, namespaced for the same reason.
    next_burst: u64,
}

/// Fabric Element runtime state. No tier arithmetic lives here: which
/// destinations each port may carry comes from the engine's
/// [`RoutePlan`], so the same state drives Clos and flat fabrics alike.
struct FeState {
    node: NodeId,
    links: Vec<LinkId>,
    out_dirs: Vec<u32>,
    // det-lint: allow(unordered-iter, per-destination cache hit by key at forward time; never iterated)
    sprayers: HashMap<u32, (u64, Sprayer)>,
    reach: ReachTable,
}

/// Measurements collected by the engine.
///
/// Derives `PartialEq`/`Eq` so determinism tests can assert that two runs
/// with the same seed produce **bit-identical** measurements — including
/// a sequential run against the merged per-shard measurements of a
/// [`crate::shard::ShardedFabricEngine`] run (see [`FabricStats::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricStats {
    /// Per-cell fabric traversal latency (uplink enqueue → dst FA), ns bins.
    pub cell_latency_ns: Histogram,
    /// Per-packet end-to-end latency (inject → egress wire), ns bins.
    pub packet_latency_ns: Histogram,
    /// Last-stage FE output queue depth in cells, sampled at cell arrival.
    pub last_stage_queue: Histogram,
    /// All FE output queues, same sampling.
    pub fe_queue: Histogram,
    /// FA uplink queues, same sampling.
    pub fa_uplink_queue: Histogram,
    /// Cells put on a fabric wire.
    pub cells_sent: Counter,
    /// Cells that reached their destination FA.
    pub cells_delivered: Counter,
    /// Cells dropped inside the fabric (must stay 0: the fabric is lossless).
    pub cells_dropped: Counter,
    /// Cells lost to injected link errors (CRC-failed, §5.10).
    pub cells_corrupted: Counter,
    /// Packets dropped at the ingress VOQ cap (§3.1 persistent
    /// oversubscription).
    pub ingress_drops: Counter,
    /// CBR source ticks deferred by host flow control (§5.4).
    pub host_fc_pauses: Counter,
    /// Fabric Congestion Indication marks observed (§5.6).
    pub fci_marks: Counter,
    /// Packets handed to `inject` / generated by sources.
    pub packets_injected: Counter,
    /// Packets fully reassembled and played out at egress.
    pub packets_delivered: Counter,
    /// Packets discarded at reassembly (corrupted member cells).
    pub packets_discarded: Counter,
    /// Payload bytes of delivered packets.
    pub bytes_delivered: Counter,
    /// Scheduler credits issued to source FAs.
    pub credits_sent: Counter,
    /// Delivered payload bytes per destination FA.
    pub delivered_per_fa: Vec<u64>,
    /// Delivered payload bytes per (destination FA, port).
    pub delivered_per_port: Vec<Vec<u64>>,
    /// Peak egress-buffer occupancy observed on any port (bytes).
    pub max_egress_bytes: u64,
    /// Peak VOQ occupancy observed on any single VOQ (bytes).
    pub max_voq_bytes: u64,
    /// Earliest instant (ps) a cell was actually lost — dropped on a dead
    /// direction, corrupted by an error process, or sent toward an
    /// unreachable destination. `u64::MAX` while lossless. Ingress VOQ
    /// drops are admission control, not fabric loss, and reassembly
    /// discards are delayed echoes of an already-stamped cell loss; both
    /// are excluded so `[first_loss_ps, last_loss_ps]` brackets exactly
    /// the churn-induced loss window.
    pub first_loss_ps: u64,
    /// Latest instant (ps) a cell was lost (0 while lossless).
    pub last_loss_ps: u64,
    /// Latest instant (ps) a link's administrative state changed
    /// (`fail_link` / `restore_link` / `set_link_error_rate`).
    pub last_link_event_ps: u64,
    /// Latest instant (ps) any reachability table changed — advert
    /// content, expiry, faulty marking or revival.
    /// `last_reach_change_ps − last_link_event_ps` is the control plane's
    /// convergence time after the last churn event.
    pub last_reach_change_ps: u64,
    /// Finite message flows: per-flow FCT table + histogram (the fabric
    /// side of the Fig 10 a–c experiments). Shared surface with
    /// `TransportSim::flow_stats()`.
    pub flows: FlowStats,
}

impl FabricStats {
    fn new(num_fa: usize, ports: usize, bounded_flows: bool) -> Self {
        FabricStats {
            cell_latency_ns: Histogram::new(100, 4_000), // 100ns bins to 400µs
            packet_latency_ns: Histogram::new(100, 10_000),
            last_stage_queue: Histogram::new(1, 1_024),
            fe_queue: Histogram::new(1, 1_024),
            fa_uplink_queue: Histogram::new(1, 4_096),
            cells_sent: Counter::default(),
            cells_delivered: Counter::default(),
            cells_dropped: Counter::default(),
            cells_corrupted: Counter::default(),
            ingress_drops: Counter::default(),
            host_fc_pauses: Counter::default(),
            fci_marks: Counter::default(),
            packets_injected: Counter::default(),
            packets_delivered: Counter::default(),
            packets_discarded: Counter::default(),
            bytes_delivered: Counter::default(),
            credits_sent: Counter::default(),
            delivered_per_fa: vec![0; num_fa],
            delivered_per_port: vec![vec![0; ports]; num_fa],
            max_egress_bytes: 0,
            max_voq_bytes: 0,
            first_loss_ps: u64::MAX,
            last_loss_ps: 0,
            last_link_event_ps: 0,
            last_reach_change_ps: 0,
            flows: if bounded_flows {
                FlowStats::new_sketched()
            } else {
                FlowStats::new()
            },
        }
    }

    /// Merge another engine's measurements into this one (the sharded
    /// reduction). Every sample is recorded by exactly one shard —
    /// histograms and counters add, peaks take the max, and the flow
    /// table absorbs the other side's finishes — so folding the shards in
    /// **ascending shard order** reproduces the sequential run's record
    /// bit for bit.
    pub fn merge(&mut self, other: &FabricStats) {
        self.cell_latency_ns.merge(&other.cell_latency_ns);
        self.packet_latency_ns.merge(&other.packet_latency_ns);
        self.last_stage_queue.merge(&other.last_stage_queue);
        self.fe_queue.merge(&other.fe_queue);
        self.fa_uplink_queue.merge(&other.fa_uplink_queue);
        self.cells_sent.add(other.cells_sent.get());
        self.cells_delivered.add(other.cells_delivered.get());
        self.cells_dropped.add(other.cells_dropped.get());
        self.cells_corrupted.add(other.cells_corrupted.get());
        self.ingress_drops.add(other.ingress_drops.get());
        self.host_fc_pauses.add(other.host_fc_pauses.get());
        self.fci_marks.add(other.fci_marks.get());
        self.packets_injected.add(other.packets_injected.get());
        self.packets_delivered.add(other.packets_delivered.get());
        self.packets_discarded.add(other.packets_discarded.get());
        self.bytes_delivered.add(other.bytes_delivered.get());
        self.credits_sent.add(other.credits_sent.get());
        assert_eq!(self.delivered_per_fa.len(), other.delivered_per_fa.len());
        for (a, b) in self
            .delivered_per_fa
            .iter_mut()
            .zip(&other.delivered_per_fa)
        {
            *a += b;
        }
        for (a, b) in self
            .delivered_per_port
            .iter_mut()
            .zip(&other.delivered_per_port)
        {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        self.max_egress_bytes = self.max_egress_bytes.max(other.max_egress_bytes);
        self.max_voq_bytes = self.max_voq_bytes.max(other.max_voq_bytes);
        // Every loss/churn/table event is stamped by exactly one shard at
        // the same simulated instant the sequential run stamps it, so
        // min/max folds reproduce the sequential timestamps bit for bit.
        self.first_loss_ps = self.first_loss_ps.min(other.first_loss_ps);
        self.last_loss_ps = self.last_loss_ps.max(other.last_loss_ps);
        self.last_link_event_ps = self.last_link_event_ps.max(other.last_link_event_ps);
        self.last_reach_change_ps = self.last_reach_change_ps.max(other.last_reach_change_ps);
        self.flows.absorb_finishes(&other.flows);
    }

    /// Duration of the loss window, if any loss was recorded.
    pub fn loss_window(&self) -> Option<SimDuration> {
        (self.first_loss_ps != u64::MAX)
            .then(|| SimDuration::from_ps(self.last_loss_ps - self.first_loss_ps))
    }

    /// Reachability convergence time after the last churn event: how long
    /// the tables kept changing past the final link event. `None` when no
    /// link event was injected or the tables never changed afterwards.
    pub fn convergence_time(&self) -> Option<SimDuration> {
        (self.last_link_event_ps > 0 && self.last_reach_change_ps > self.last_link_event_ps)
            .then(|| SimDuration::from_ps(self.last_reach_change_ps - self.last_link_event_ps))
    }

    fn note_loss(&mut self, now: SimTime) {
        let ps = now.as_ps();
        self.first_loss_ps = self.first_loss_ps.min(ps);
        self.last_loss_ps = self.last_loss_ps.max(ps);
    }

    fn note_link_event(&mut self, now: SimTime) {
        self.last_link_event_ps = self.last_link_event_ps.max(now.as_ps());
    }

    fn note_reach_change(&mut self, now: SimTime) {
        self.last_reach_change_ps = self.last_reach_change_ps.max(now.as_ps());
    }
}

/// The Stardust fabric simulator. See the module docs for the data flow.
///
/// Generic over the event-core kind `K` so the same engine can run on the
/// production calendar queue ([`CalendarCore`], the default) or the
/// reference binary heap ([`stardust_sim::HeapCore`]); the determinism
/// suite asserts the two produce bit-identical [`FabricStats`].
pub struct FabricEngine<K: CoreKind = CalendarCore> {
    cfg: FabricConfig,
    topo: Topology,
    fas: Vec<FaState>,
    fes: Vec<FeState>,
    /// NodeId → FA index (or u32::MAX).
    fa_of_node: Vec<u32>,
    /// NodeId → FE index (or u32::MAX).
    fe_of_node: Vec<u32>,
    dirs: Vec<DirState>,
    events: K::Queue<Ev>,
    /// Scratch buffer for batched same-timestamp dispatch in `run_until`.
    batch: Vec<ScheduledEvent<Ev>>,
    /// Slab of in-flight cells; events and link FIFOs hold `CellRef`
    /// indices into it. Freed slots are recycled LIFO.
    cells: Vec<Cell>,
    free_cells: Vec<CellRef>,
    // det-lint: allow(unordered-iter, reassembly book keyed by burst id via entry/remove only; never iterated)
    bursts: HashMap<u64, Burst>,
    /// Counter behind API-minted [`PacketId`]s ([`FabricEngine::inject`]).
    /// Runtime packets use per-FA namespaced ids instead (see
    /// [`FaState::next_packet`]); API ids stay below the namespace floor.
    next_packet: u64,
    stats: FabricStats,
    measure_from: SimTime,
    seed: u64,
    dynamic_reach: bool,
    flows: Vec<CbrFlow>,
    /// Finite message flows, keyed by the id `add_message` returned:
    /// indexed tables by default, in-flight-only maps under
    /// `cfg.bounded_flows`.
    msg_book: MsgBook,
    /// Per-link-direction error draw streams (§5.10 failure injection),
    /// split off one labelled base stream so each direction's draw
    /// sequence is independent of every other direction's traffic — and
    /// therefore identical under any sharding.
    err_rngs: Vec<DetRng>,
    /// This engine's place in a sharded run (`None` = sequential: the
    /// engine owns every node and routes nothing).
    view: Option<ShardView>,
    /// FA index → owning shard (empty when sequential).
    shard_of_fa: Vec<u32>,
    /// Direction index → shard owning the direction's destination node
    /// (empty when sequential).
    dir_dst_shard: Vec<u32>,
    /// Outgoing cross-shard events, one batch per destination shard
    /// (empty when sequential); drained by the shard driver at barriers.
    outbox: Vec<Vec<OutItem>>,
    /// The route plan: per-direction candidate destination sets. Seeds
    /// the reachability tables and filters incoming advertisements, so
    /// forwarding never leaves the plan's loop-free candidate structure.
    plan: Arc<RoutePlan>,
    /// Reusable scratch for eligible-set / advert-union computation on
    /// the spray and reach paths (avoids per-call allocation).
    scratch: Vec<u32>,
}

/// A [`FabricEngine`] on the reference binary-heap event core, used by
/// the old-vs-new determinism regression and the core benchmarks.
pub type HeapCoreFabricEngine = FabricEngine<stardust_sim::HeapCore>;

impl FabricEngine {
    /// Build an engine on the default calendar-queue event core. See
    /// [`FabricEngine::with_core`].
    pub fn new(topo: Topology, cfg: FabricConfig) -> Self {
        Self::with_core(topo, cfg)
    }
}

impl<K: CoreKind> FabricEngine<K> {
    /// Build an engine over `topo` with the default shortest-path route
    /// plan. Edge nodes become Fabric Adapters (in `topo` order), fabric
    /// nodes become Fabric Elements. Reachability tables are seeded
    /// converged; if `cfg.reach_interval` is set the protocol runs and
    /// maintains them (and failures self-heal).
    pub fn with_core(topo: Topology, cfg: FabricConfig) -> Self {
        let plan = Arc::new(RoutePlan::shortest_path(&topo));
        Self::with_view(topo, cfg, None, plan)
    }

    /// Build an engine over `topo` with an explicit route plan (e.g. the
    /// greedy ring plan a Space Shuffle builder derived).
    pub fn with_plan(topo: Topology, cfg: FabricConfig, plan: Arc<RoutePlan>) -> Self {
        Self::with_view(topo, cfg, None, plan)
    }

    /// Build one shard of a partitioned run (or the sequential engine,
    /// with `view = None`). A sharded engine holds the full topology but
    /// only ever dispatches events for the nodes its view owns; events
    /// targeting foreign nodes route to the per-shard outbox instead of
    /// the local calendar.
    pub(crate) fn with_view(
        topo: Topology,
        cfg: FabricConfig,
        view: Option<ShardView>,
        plan: Arc<RoutePlan>,
    ) -> Self {
        cfg.validate();
        let fa_nodes = topo.nodes_of_kind(NodeKind::Edge);
        let fe_nodes = topo.nodes_of_kind(NodeKind::Fabric);
        assert!(!fa_nodes.is_empty(), "no edge nodes in topology");
        assert!(
            topo.nodes_of_kind(NodeKind::Host).is_empty(),
            "fabric engine expects an FA-edge topology without host nodes"
        );

        let mut fa_of_node = vec![u32::MAX; topo.num_nodes()];
        let mut fe_of_node = vec![u32::MAX; topo.num_nodes()];
        for (i, &n) in fa_nodes.iter().enumerate() {
            fa_of_node[n.0 as usize] = i as u32;
        }
        for (i, &n) in fe_nodes.iter().enumerate() {
            fe_of_node[n.0 as usize] = i as u32;
        }

        // Directions: index = link*2 + from_end.
        let mut dirs = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.link_ids() {
            let link = topo.link(l);
            for from_end in 0..2u8 {
                let src = link.end(from_end);
                let dst = link.dst_of(from_end);
                let dst_port_index =
                    topo.node(dst).links.iter().position(|&x| x == l).unwrap() as u16;
                let src_is_fe = fe_of_node[src.0 as usize] != u32::MAX;
                let dst_is_fa = fa_of_node[dst.0 as usize] != u32::MAX;
                dirs.push(DirState {
                    up: true,
                    error_rate: 0.0,
                    rate_bps: cfg.fabric_link_bps,
                    prop: fiber_delay(link.meters as u64),
                    queue: std::collections::VecDeque::new(),
                    in_service: None,
                    dst_node: dst,
                    dst_port_index,
                    last_stage: src_is_fe && dst_is_fa,
                    fe_source: src_is_fe,
                });
            }
        }

        // The plan is the single source of routing truth: every port of
        // every device is seeded with its direction's candidate set, so
        // static tables start converged on any topology shape.
        assert_eq!(
            plan.dir_dsts.len(),
            topo.num_links() * 2,
            "route plan does not match this topology's link count"
        );
        assert_eq!(
            plan.num_endpoints,
            fa_nodes.len(),
            "route plan does not match this topology's endpoint count"
        );

        let mut fas = Vec::with_capacity(fa_nodes.len());
        for &n in &fa_nodes {
            // On Clos shapes all FA fabric ports are uplinks; on flat
            // fabrics the FA's single-level attachment links play the
            // same role.
            let uplinks = topo.node(n).links.clone();
            assert!(!uplinks.is_empty(), "FA {n:?} has no uplinks");
            let out_dirs: Vec<u32> = uplinks
                .iter()
                .map(|&l| l.0 * 2 + topo.link(l).end_of(n) as u32)
                .collect();
            let mut reach = ReachTable::new(uplinks.len());
            for (p, &d) in out_dirs.iter().enumerate() {
                reach.seed(p, plan.dir_dsts[d as usize].expand());
            }
            let ports = (0..cfg.host_ports)
                .map(|_| PortState {
                    sched: PortScheduler::with_policy(
                        cfg.host_port_bps,
                        cfg.credit_bytes as u64,
                        cfg.credit_speedup,
                        cfg.num_tcs,
                        cfg.fci_decrease,
                        cfg.fci_recover,
                        cfg.fci_min,
                        cfg.fci_hold,
                        cfg.sched_policy.clone(),
                    ),
                    egress_bytes: 0,
                    tx_queue: std::collections::VecDeque::new(),
                    tx_busy: false,
                })
                .collect();
            fas.push(FaState {
                node: n,
                uplinks,
                out_dirs,
                voqs: HashMap::new(),
                sprayers: HashMap::new(),
                reach,
                ports,
                sat: None,
                next_packet: 0,
                next_burst: 0,
            });
        }

        let mut fes = Vec::with_capacity(fe_nodes.len());
        for &n in &fe_nodes {
            let links = topo.node(n).links.clone();
            let out_dirs: Vec<u32> = links
                .iter()
                .map(|&l| l.0 * 2 + topo.link(l).end_of(n) as u32)
                .collect();
            let mut reach = ReachTable::new(links.len());
            for (p, &d) in out_dirs.iter().enumerate() {
                reach.seed(p, plan.dir_dsts[d as usize].expand());
            }
            fes.push(FeState {
                node: n,
                links,
                out_dirs,
                sprayers: HashMap::new(),
                reach,
            });
        }

        let dynamic_reach = cfg.reach_interval.is_some();
        let num_fa = fas.len();
        let host_ports = cfg.host_ports as usize;
        let seed = cfg.seed;
        // Per-direction error streams: split (not forked) off one base so
        // every direction's stream is a pure function of (seed, dir).
        let err_base = DetRng::from_label(seed, "link-errors");
        let err_rngs = (0..dirs.len())
            .map(|d| err_base.split_u64(d as u64))
            .collect();
        // Shard routing tables (empty for the sequential engine).
        let (shard_of_fa, dir_dst_shard, outbox) = match &view {
            None => (Vec::new(), Vec::new(), Vec::new()),
            Some(v) => {
                let of_fa = fas
                    .iter()
                    .map(|f| v.shard_of_node[f.node.0 as usize])
                    .collect();
                let of_dir = dirs
                    .iter()
                    .map(|d: &DirState| v.shard_of_node[d.dst_node.0 as usize])
                    .collect();
                let outbox = (0..v.num_shards).map(|_| Vec::new()).collect();
                (of_fa, of_dir, outbox)
            }
        };
        let bounded_flows = cfg.bounded_flows;
        let mut engine: Self = FabricEngine {
            cfg,
            topo,
            fas,
            fes,
            fa_of_node,
            fe_of_node,
            dirs,
            events: <K::Queue<Ev> as EventCore<Ev>>::new(),
            batch: Vec::new(),
            cells: Vec::new(),
            free_cells: Vec::new(),
            bursts: HashMap::new(),
            next_packet: 0,
            stats: FabricStats::new(num_fa, host_ports, bounded_flows),
            measure_from: SimTime::ZERO,
            seed,
            dynamic_reach,
            flows: Vec::new(),
            msg_book: if bounded_flows {
                MsgBook::Stream {
                    next_id: 0,
                    pending: HashMap::new(),
                    active: HashMap::new(),
                }
            } else {
                MsgBook::Table {
                    msgs: Vec::new(),
                    remaining: Vec::new(),
                }
            },
            err_rngs,
            view,
            shard_of_fa,
            dir_dst_shard,
            outbox,
            plan,
            scratch: Vec::new(),
        };
        if dynamic_reach {
            let interval = engine.cfg.reach_interval.unwrap();
            // Stagger ticks across nodes to avoid a synchronized wave.
            // The offsets index over **all** nodes even in a sharded
            // engine (which only schedules the ticks of nodes it owns),
            // so every node's phase is partition-invariant.
            let all_nodes: Vec<NodeId> = engine
                .fas
                .iter()
                .map(|f| f.node)
                .chain(engine.fes.iter().map(|f| f.node))
                .collect();
            let n = all_nodes.len() as u64;
            for (i, node) in all_nodes.into_iter().enumerate() {
                if !engine.owns_node(node) {
                    continue;
                }
                let offset = SimDuration::from_ps(interval.as_ps() * i as u64 / n);
                engine.sched(SimTime::ZERO + offset, Ev::ReachTick { node });
            }
        }
        engine
    }

    // -- shard plumbing ----------------------------------------------------

    /// This engine's shard id (0 when sequential).
    fn my_shard(&self) -> u32 {
        self.view.as_ref().map_or(0, |v| v.shard)
    }

    /// Does this engine own (dispatch events for) `node`?
    fn owns_node(&self, node: NodeId) -> bool {
        match &self.view {
            None => true,
            Some(v) => v.shard_of_node[node.0 as usize] == v.shard,
        }
    }

    /// Does this engine own Fabric Adapter `fa`?
    fn owns_fa(&self, fa: u32) -> bool {
        match &self.view {
            None => true,
            Some(v) => self.shard_of_fa[fa as usize] == v.shard,
        }
    }

    /// Schedule `ev` at `at` under its canonical content key, routing it
    /// to the outbox when its target entity lives on another shard.
    fn sched(&mut self, at: SimTime, ev: Ev) {
        if self.view.is_some() {
            if let Some(dst) = self.remote_target(&ev) {
                self.outbox[dst as usize].push(OutItem {
                    at,
                    payload: OutPayload::Ev(ev),
                });
                return;
            }
        }
        self.events.schedule_keyed(at, key_of(&ev), ev);
    }

    /// The shard owning `ev`'s target entity, when that is not this
    /// shard. Only control messages, reachability messages and burst
    /// records can target foreign entities — cells are routed separately
    /// (see `on_tx_done`), and every other event is self-directed.
    fn remote_target(&self, ev: &Ev) -> Option<u32> {
        let s = match ev {
            Ev::CtrlRequest { dst_fa, .. } => self.shard_of_fa[*dst_fa as usize],
            Ev::CtrlCredit { src_fa, .. } => self.shard_of_fa[*src_fa as usize],
            Ev::ReachMsg { node, .. } => {
                self.view.as_ref().expect("sharded").shard_of_node[node.0 as usize]
            }
            Ev::BurstOpen { burst } => self.shard_of_fa[burst.dst_fa as usize],
            _ => return None,
        };
        (s != self.my_shard()).then_some(s)
    }

    /// This shard's outgoing cross-shard batches (one per destination
    /// shard). The shard driver publishes them into the mailbox rings at
    /// every barrier, draining each batch in place — the `Vec`s keep
    /// their capacity, so steady-state windows allocate nothing here.
    pub(crate) fn outbox_mut(&mut self) -> &mut [Vec<OutItem>] {
        &mut self.outbox
    }

    /// Deliver mailbox items from a peer shard into the local calendar,
    /// preserving the sender's order (same-key ties keep sender FIFO).
    /// Drains `items` in place so the buffer's capacity is reused.
    pub(crate) fn deliver(&mut self, items: &mut Vec<OutItem>) {
        for it in items.drain(..) {
            match it.payload {
                OutPayload::Ev(ev) => {
                    debug_assert!(self.remote_target(&ev).is_none(), "misrouted event");
                    self.events.schedule_keyed(it.at, key_of(&ev), ev);
                }
                OutPayload::Cell { dir, cell } => {
                    let r = self.alloc_cell(cell);
                    let ev = Ev::CellArrive { dir, cell: r };
                    self.events.schedule_keyed(it.at, key_of(&ev), ev);
                }
            }
        }
    }

    /// Timestamp of this engine's earliest pending event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Mint a runtime packet id, namespaced by the minting FA.
    fn runtime_packet_id(&mut self, src_fa: u32) -> PacketId {
        let fa = &mut self.fas[src_fa as usize];
        let id = PacketId(((src_fa as u64 + 1) << 40) | fa.next_packet);
        fa.next_packet += 1;
        id
    }

    // -- public API --------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Immutable view of the collected statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Number of Fabric Adapters.
    pub fn num_fas(&self) -> usize {
        self.fas.len()
    }

    /// Number of Fabric Elements.
    pub fn num_fes(&self) -> usize {
        self.fes.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Verification view of every device's eligibility: FAs then FEs, one
    /// inner `Vec` per destination FA holding the *out-direction indices*
    /// (`link.0 * 2 + from_end`) currently eligible for that destination.
    /// Lets tests and the `stardust-mc` model checker assert "no spray
    /// set contains a failed direction" and "tables reconverge after
    /// restore" on any topology without reaching into private state.
    pub fn eligible_dir_snapshot(&self) -> EligibilitySnapshot {
        let nd = self.fas.len() as u32;
        let snap = |reach: &ReachTable, out_dirs: &[u32]| -> Vec<Vec<u32>> {
            (0..nd)
                .map(|d| {
                    reach
                        .eligible(d)
                        .iter()
                        .map(|&p| out_dirs[p as usize])
                        .collect()
                })
                .collect()
        };
        self.fas
            .iter()
            .map(|st| snap(&st.reach, &st.out_dirs))
            .chain(self.fes.iter().map(|st| snap(&st.reach, &st.out_dirs)))
            .collect()
    }

    /// The topology this engine runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Administrative state of a link: true iff both directions are up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.dirs[(link.0 * 2) as usize].up && self.dirs[(link.0 * 2 + 1) as usize].up
    }

    /// Reachability-table snapshot for canonical state hashing: per
    /// device (FAs then FEs), per port, one [`ReachPortSnapshot`]. The
    /// `stardust-mc` checker folds this — with times made relative to
    /// `now` — into its visited-state hash.
    pub fn reach_snapshot(&self) -> Vec<Vec<ReachPortSnapshot>> {
        let snap = |reach: &ReachTable| -> Vec<ReachPortSnapshot> {
            reach
                .ports()
                .iter()
                .map(|p| (p.up, p.good_streak, p.last_heard, p.fas.clone()))
                .collect()
        };
        self.fas
            .iter()
            .map(|st| snap(&st.reach))
            .chain(self.fes.iter().map(|st| snap(&st.reach)))
            .collect()
    }

    /// In-flight reachability control messages as `(deliver_at, node,
    /// port, faulty, advertised FAs)`, sorted into a canonical order —
    /// the verification layer's view of the protocol's message channel.
    pub fn pending_reach_msgs(&self) -> Vec<(SimTime, u32, u16, bool, Vec<u32>)> {
        let mut out = Vec::new();
        self.events.visit_pending(&mut |at, _key, ev| {
            if let Ev::ReachMsg {
                node,
                port,
                fas,
                faulty,
            } = ev
            {
                out.push((at, node.0, *port, *faulty, fas.as_ref().clone()));
            }
        });
        out.sort_unstable();
        out
    }

    /// Upper bound on a single reachability-message transit: the maximum
    /// per-direction propagation delay (advertisements are scheduled
    /// exactly one propagation ahead of their send instant). Invariant I3
    /// of the model checker bounds every pending message's delivery time
    /// by `now + max_prop_delay()`.
    pub fn max_prop_delay(&self) -> SimDuration {
        self.dirs
            .iter()
            .map(|d| d.prop)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Whether the reachability protocol is running (vs static tables).
    pub fn dynamic_reach(&self) -> bool {
        self.dynamic_reach
    }

    /// The saturation targets of an FA, if it is in saturation mode.
    pub fn saturation_targets(&self, fa: u32) -> Option<&[(u32, u8, u8)]> {
        self.fas[fa as usize]
            .sat
            .as_ref()
            .map(|s| s.targets.as_slice())
    }

    /// Exclude samples before `at` from the distribution statistics
    /// (warm-up trimming).
    pub fn begin_measurement(&mut self, at: SimTime) {
        self.measure_from = at;
    }

    /// Inject one packet at `at` into `src_fa`'s ingress, destined to
    /// `(dst_fa, dst_port, tc)`. Returns its id.
    pub fn inject(
        &mut self,
        at: SimTime,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        bytes: u32,
    ) -> PacketId {
        assert_ne!(
            src_fa, dst_fa,
            "self-destined traffic does not enter the fabric"
        );
        assert!((dst_fa as usize) < self.fas.len());
        assert!(dst_port < self.cfg.host_ports);
        assert!(tc < self.cfg.num_tcs);
        assert!(bytes > 0);
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        debug_assert!(
            id.0 < 1 << 40,
            "API packet ids must stay below the per-FA namespace"
        );
        let pkt = Packet {
            id,
            src_fa,
            dst_fa,
            dst_port,
            tc,
            bytes,
            flow: NO_FLOW,
            injected_at: at,
        };
        if self.owns_fa(src_fa) {
            self.sched(at, Ev::Inject { pkt: Box::new(pkt) });
        }
        id
    }

    /// Add an open-loop constant-bit-rate flow injecting `pkt_bytes`
    /// packets at `rate_bps` from `start` until `stop`. Used by the
    /// push-vs-pull (Fig 7 / Fig 12) and incast (§5.4) experiments.
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        rate_bps: u64,
        pkt_bytes: u32,
        start: SimTime,
        stop: SimTime,
    ) {
        assert!(rate_bps > 0 && pkt_bytes > 0);
        assert_ne!(src_fa, dst_fa);
        let interval = serialization_time(pkt_bytes as u64, rate_bps);
        let id = self.flows.len() as u32;
        self.flows.push(CbrFlow {
            src_fa,
            dst_fa,
            dst_port,
            tc,
            pkt_bytes,
            interval,
            stop,
        });
        if self.owns_fa(src_fa) {
            self.sched(start, Ev::FlowTick { flow: id });
        }
    }

    /// Add a finite message flow: `bytes` of payload offered to
    /// `src_fa`'s ingress at `start`, destined to `(dst_fa, dst_port,
    /// tc)`. The message is segmented into `cfg.msg_mtu_bytes`-sized
    /// packets that take the ordinary VOQ → credit → packing → spray
    /// path (or the §5.6 low-latency bypass if `tc` is configured for
    /// it); its flow-completion time — recorded in
    /// [`FabricStats::flows`] — ends when the last byte leaves the
    /// destination egress wire. Returns the flow's id (its index into
    /// [`FlowStats::records`] in the default table mode; under
    /// `cfg.bounded_flows` there is no record table, only the id).
    ///
    /// This is the fabric-side workload of the paper's Fig 10 a–c
    /// experiments: finite flows with no per-flow transport machinery,
    /// paced purely by the fabric's credit scheduler.
    pub fn add_message(
        &mut self,
        src_fa: u32,
        dst_fa: u32,
        dst_port: u8,
        tc: u8,
        bytes: u64,
        start: SimTime,
    ) -> u32 {
        assert_ne!(
            src_fa, dst_fa,
            "self-destined traffic does not enter the fabric"
        );
        assert!((src_fa as usize) < self.fas.len());
        assert!((dst_fa as usize) < self.fas.len());
        assert!(dst_port < self.cfg.host_ports);
        assert!(tc < self.cfg.num_tcs);
        assert!(bytes > 0);
        let (owns_src, owns_dst) = (self.owns_fa(src_fa), self.owns_fa(dst_fa));
        let m = MsgFlow {
            src_fa,
            dst_fa,
            dst_port,
            tc,
            bytes,
        };
        let flow = match &mut self.msg_book {
            // Table mode: in a sharded run every shard registers every
            // flow (so the stats tables merge index-wise).
            MsgBook::Table { msgs, remaining } => {
                let flow = msgs.len() as u32;
                msgs.push(m);
                remaining.push(bytes);
                flow
            }
            // Stream mode: ids come from counting offers (identical on
            // every shard); per-flow state is split by ownership — the
            // source shard holds the descriptor until segmentation, the
            // destination shard the completion countdown.
            MsgBook::Stream {
                next_id,
                pending,
                active,
            } => {
                let flow = *next_id;
                *next_id += 1;
                if owns_src {
                    pending.insert(flow, m);
                }
                if owns_dst {
                    active.insert(
                        flow,
                        StreamMsg {
                            remaining: bytes,
                            start,
                        },
                    );
                }
                flow
            }
        };
        match &self.msg_book {
            MsgBook::Table { .. } => {
                let idx = self.stats.flows.add(src_fa, dst_fa, bytes, start);
                debug_assert_eq!(idx, flow, "flow table out of sync");
            }
            // Sketch books hold partial, summable counts: exactly one
            // shard (the destination's) counts each offer.
            MsgBook::Stream { .. } => {
                if owns_dst {
                    self.stats.flows.add(src_fa, dst_fa, bytes, start);
                }
            }
        }
        // Only the source's shard starts the flow.
        if owns_src {
            self.sched(start, Ev::MsgStart { flow });
        }
        flow
    }

    /// Undelivered payload bytes of message `flow` (diagnostic/test
    /// surface). Under `cfg.bounded_flows` a completed flow has no entry
    /// left, which reads as 0.
    pub fn msg_remaining_of(&self, flow: u32) -> u64 {
        match &self.msg_book {
            MsgBook::Table { remaining, .. } => remaining[flow as usize],
            MsgBook::Stream { active, .. } => active.get(&flow).map_or(0, |m| m.remaining),
        }
    }

    /// Put every FA into saturation mode: each FA keeps `backlog_bytes`
    /// of `packet_bytes`-sized packets queued toward every other FA
    /// (destination ports assigned round-robin), refilled as credits
    /// drain them. This is the open-loop, all-to-all workload of §6.2.
    pub fn saturate_all_to_all(&mut self, packet_bytes: u32, backlog_bytes: u64) {
        let n = self.fas.len() as u32;
        let ports = self.cfg.host_ports;
        for src in 0..n {
            if !self.owns_fa(src) {
                continue;
            }
            let targets: Vec<(u32, u8, u8)> = (0..n)
                .filter(|&d| d != src)
                .map(|d| (d, ((src + d) % ports as u32) as u8, 0u8))
                .collect();
            let n_targets = targets.len();
            self.fas[src as usize].sat = Some(SatState {
                packet_bytes,
                backlog_bytes,
                targets,
            });
            for i in 0..n_targets {
                let (dst, port, tc) = self.fas[src as usize]
                    .sat
                    .as_ref()
                    .expect("just set")
                    .targets[i];
                self.top_up_voq(
                    src,
                    VoqKey {
                        dst_fa: dst,
                        dst_port: port,
                        tc,
                    },
                );
            }
        }
    }

    /// Fail a link (both directions): queued and in-flight cells are
    /// lost; with the reachability protocol running the fabric heals.
    /// Failing an already-failed link is a deterministic no-op.
    pub fn fail_link(&mut self, link: LinkId) {
        let now = self.events.now();
        let mut changed = false;
        for from_end in 0..2u32 {
            let idx = (link.0 * 2 + from_end) as usize;
            let d = &mut self.dirs[idx];
            changed |= d.up;
            d.up = false;
            if !d.queue.is_empty() {
                self.stats.cells_dropped.add(d.queue.len() as u64);
                self.stats.note_loss(now);
                self.free_cells.extend(d.queue.drain(..));
            }
            // The in-service cell is dropped at its TxDone.
        }
        if changed {
            self.stats.note_link_event(now);
        }
    }

    /// Restore a previously failed link. With the protocol running the
    /// link is re-admitted after `reach_miss_threshold` good messages.
    /// Restoring a link that is already up is a deterministic no-op.
    pub fn restore_link(&mut self, link: LinkId) {
        let now = self.events.now();
        let mut changed = false;
        for from_end in 0..2u32 {
            let d = &mut self.dirs[(link.0 * 2 + from_end) as usize];
            changed |= !d.up;
            d.up = true;
        }
        if changed {
            self.stats.note_link_event(now);
        }
    }

    /// Inject a bit-error process on a link: every cell (data or
    /// reachability) traversing it is lost with probability `rate`
    /// (§5.10). A high rate makes the reachability protocol declare the
    /// link faulty and exclude it, exactly as the paper's error-threshold
    /// mechanism would.
    pub fn set_link_error_rate(&mut self, link: LinkId, rate: f64) {
        assert!((0.0..=1.0).contains(&rate));
        let now = self.events.now();
        let mut changed = false;
        for from_end in 0..2u32 {
            let d = &mut self.dirs[(link.0 * 2 + from_end) as usize];
            changed |= d.error_rate != rate;
            d.error_rate = rate;
        }
        if changed {
            self.stats.note_link_event(now);
        }
    }

    /// Run until the event queue is exhausted or `horizon` is reached,
    /// then advance the clock to `horizon` (unless it is [`SimTime::MAX`],
    /// which means "run to exhaustion" and leaves the clock at the final
    /// event). Committing the horizon is what makes back-to-back
    /// [`FabricEngine::run_for`] calls cover exactly their duration
    /// instead of restarting from the last popped event.
    ///
    /// Events sharing a timestamp are drained from the calendar in one
    /// batch and dispatched in FIFO order, saving a peek/pop round trip
    /// per event on the (common) simultaneous-event clusters.
    pub fn run_until(&mut self, horizon: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        while self.events.pop_batch_until(horizon, &mut batch) > 0 {
            for ev in batch.drain(..) {
                self.dispatch(ev.at, ev.payload);
            }
        }
        self.batch = batch;
        if horizon < SimTime::MAX {
            self.events.advance_clock(horizon);
        }
    }

    /// Run for `d` more simulated time. Consecutive calls advance the
    /// clock by exactly `d` each (see [`FabricEngine::run_until`]).
    pub fn run_for(&mut self, d: SimDuration) {
        let h = self.now() + d;
        self.run_until(h);
    }

    /// Total events executed (diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.events.events_executed()
    }

    /// Delivered payload throughput over `window`, as a fraction of the
    /// aggregate fabric payload capacity (the §6.2 "fabric utilization").
    /// Degenerate inputs (no Fabric Adapters, no uplinks, a zero-length
    /// window) yield 0.0 rather than a panic or a division by zero.
    pub fn fabric_utilization(&self, window: SimDuration) -> f64 {
        let uplinks = self.fas.first().map_or(0, |fa| fa.uplinks.len());
        payload_utilization(
            self.fas.len(),
            uplinks,
            self.cfg.fabric_link_bps,
            self.cfg.payload_fraction(),
            self.stats.bytes_delivered.get(),
            window,
        )
    }

    /// Direct read of a link-direction queue depth (tests/diagnostics).
    pub fn dir_depth(&self, link: LinkId, from_end: u8) -> usize {
        self.dirs[(link.0 * 2 + from_end as u32) as usize].depth()
    }

    /// [`FabricEngine::fabric_utilization`] for an externally supplied
    /// delivered-byte count — the sharded engine folds its shards' counts
    /// and evaluates against this engine's capacity parameters.
    pub fn payload_utilization_of(&self, delivered_bytes: u64, window: SimDuration) -> f64 {
        let uplinks = self.fas.first().map_or(0, |fa| fa.uplinks.len());
        payload_utilization(
            self.fas.len(),
            uplinks,
            self.cfg.fabric_link_bps,
            self.cfg.payload_fraction(),
            delivered_bytes,
            window,
        )
    }

    // -- internals ---------------------------------------------------------

    fn measuring(&self, now: SimTime) -> bool {
        now >= self.measure_from
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::TxDone { dir } => self.on_tx_done(now, dir),
            Ev::CellArrive { dir, cell } => self.on_cell_arrive(now, dir, cell),
            Ev::CtrlRequest {
                dst_fa,
                port,
                tc,
                src_fa,
                bytes,
            } => self.on_request(now, dst_fa, port, tc, src_fa, bytes),
            Ev::CtrlCredit { src_fa, key } => self.on_credit(now, src_fa, key),
            Ev::CreditTick { fa, port } => self.on_credit_tick(now, fa, port),
            Ev::PortTxDone { fa, port } => self.on_port_tx_done(now, fa, port),
            Ev::Inject { pkt } => self.on_inject(now, *pkt),
            Ev::ReachTick { node } => self.on_reach_tick(now, node),
            Ev::ReachMsg {
                node,
                port,
                fas,
                faulty,
            } => self.on_reach_msg(now, node, port, &fas, faulty),
            Ev::BurstOpen { burst } => self.open_burst(*burst),
            Ev::BurstTimeout { burst } => self.on_burst_timeout(now, burst),
            Ev::FlowTick { flow } => self.on_flow_tick(now, flow),
            Ev::MsgStart { flow } => self.on_msg_start(now, flow),
        }
    }

    /// A message flow arrives at its source FA: segment into MTU packets
    /// and enqueue them all through the shared ingress admission path,
    /// registering the aggregate demand with the destination scheduler in
    /// **one** control message (per-packet requests would be pure
    /// event-count overhead — the scheduler only tracks byte totals).
    /// §3.1 VOQ-cap drops clip the message; a clipped message never
    /// completes (there is no transport to retransmit — that is the
    /// experiment's point).
    fn on_msg_start(&mut self, now: SimTime, flow: u32) {
        let m = match &mut self.msg_book {
            MsgBook::Table { msgs, .. } => msgs[flow as usize],
            // One-shot segmentation: the source-side descriptor is done
            // after this handler, so bounded mode reclaims it here.
            MsgBook::Stream { pending, .. } => pending
                .remove(&flow)
                .expect("MsgStart without a pending message"),
        };
        let mtu = self.cfg.msg_mtu_bytes as u64;
        let key = VoqKey {
            dst_fa: m.dst_fa,
            dst_port: m.dst_port,
            tc: m.tc,
        };
        let mut offered = m.bytes;
        let mut added = 0u64;
        while offered > 0 {
            let sz = offered.min(mtu) as u32;
            offered -= sz as u64;
            let id = self.runtime_packet_id(m.src_fa);
            let pkt = Packet {
                id,
                src_fa: m.src_fa,
                dst_fa: m.dst_fa,
                dst_port: m.dst_port,
                tc: m.tc,
                bytes: sz,
                flow,
                injected_at: now,
            };
            match self.admit_at_ingress(now, pkt) {
                Ingress::Dropped => {}
                Ingress::Bypassed => {}
                Ingress::Queued(delta) => added += delta,
            }
        }
        if added > 0 {
            self.sched(
                now + self.cfg.ctrl_latency,
                Ev::CtrlRequest {
                    dst_fa: key.dst_fa,
                    port: key.dst_port,
                    tc: key.tc,
                    src_fa: m.src_fa,
                    bytes: added,
                },
            );
        }
    }

    fn on_flow_tick(&mut self, now: SimTime, flow: u32) {
        let f = self.flows[flow as usize];
        if now >= f.stop {
            return;
        }
        // §5.4 host flow control: a backlogged VOQ pauses its host source
        // instead of dropping — the tick re-arms without injecting.
        if let Some((hi, _lo)) = self.cfg.host_fc {
            let key = VoqKey {
                dst_fa: f.dst_fa,
                dst_port: f.dst_port,
                tc: f.tc,
            };
            let backlog = self.fas[f.src_fa as usize]
                .voqs
                .get(&key)
                .map_or(0, |v| v.bytes());
            if backlog + f.pkt_bytes as u64 > hi {
                self.stats.host_fc_pauses.inc();
                self.sched(now + f.interval, Ev::FlowTick { flow });
                return;
            }
        }
        let id = self.runtime_packet_id(f.src_fa);
        let pkt = Packet {
            id,
            src_fa: f.src_fa,
            dst_fa: f.dst_fa,
            dst_port: f.dst_port,
            tc: f.tc,
            bytes: f.pkt_bytes,
            flow: NO_FLOW,
            injected_at: now,
        };
        self.on_inject(now, pkt);
        self.sched(now + f.interval, Ev::FlowTick { flow });
    }

    // --- cell transport ---

    /// Allocate a slab slot for an in-flight cell.
    fn alloc_cell(&mut self, cell: Cell) -> CellRef {
        if let Some(idx) = self.free_cells.pop() {
            self.cells[idx as usize] = cell;
            idx
        } else {
            self.cells.push(cell);
            (self.cells.len() - 1) as CellRef
        }
    }

    fn push_cell(&mut self, now: SimTime, dir_idx: u32, cell: CellRef) {
        let fci_threshold = self.cfg.fci_threshold_cells as usize;
        let measuring = self.measuring(now);
        let wire_bytes = self.cells[cell as usize].wire_bytes;
        let d = &mut self.dirs[dir_idx as usize];
        if !d.up {
            self.stats.cells_dropped.inc();
            self.stats.note_loss(now);
            self.free_cells.push(cell);
            return;
        }
        let depth = d.depth();
        // FCI is a Fabric Element mechanism (§4.2): only FE output queues
        // mark congestion. FA uplink queues are the adapter's own
        // fragmentation/spraying stage and burst-clump by design — a whole
        // credit-worth of cells is enqueued at packing time.
        if d.fe_source && depth >= fci_threshold {
            self.cells[cell as usize].fci = true;
            self.stats.fci_marks.inc();
        }
        if measuring {
            if d.last_stage {
                self.stats.last_stage_queue.record(depth as u64);
            }
            if d.fe_source {
                self.stats.fe_queue.record(depth as u64);
            } else {
                self.stats.fa_uplink_queue.record(depth as u64);
            }
        }
        if d.in_service.is_none() {
            let t = serialization_time(wire_bytes as u64, d.rate_bps);
            d.in_service = Some(cell);
            self.sched(now + t, Ev::TxDone { dir: dir_idx });
        } else {
            d.queue.push_back(cell);
        }
    }

    fn on_tx_done(&mut self, now: SimTime, dir_idx: u32) {
        let d = &mut self.dirs[dir_idx as usize];
        let cell = d.in_service.take().expect("TxDone without in-service cell");
        let (up, prop, rate_bps, err) = (d.up, d.prop, d.rate_bps, d.error_rate);
        let corrupted = err > 0.0 && self.err_rngs[dir_idx as usize].chance(err);
        if !up {
            self.stats.cells_dropped.inc();
            self.stats.note_loss(now);
            self.free_cells.push(cell);
        } else if corrupted {
            // A CRC-failed cell is discarded at the receiver (§5.10); the
            // reassembly timeout cleans up the burst.
            self.stats.cells_corrupted.inc();
            self.stats.note_loss(now);
            self.free_cells.push(cell);
        } else {
            let at = now + prop;
            // A cell bound for a foreign shard travels by value through
            // the mailbox (the slab is shard-local); its propagation
            // delay is at least the partition lookahead by construction.
            let remote = self
                .view
                .as_ref()
                .filter(|v| self.dir_dst_shard[dir_idx as usize] != v.shard)
                .map(|_| self.dir_dst_shard[dir_idx as usize]);
            match remote {
                Some(dst) => {
                    let c = self.cells[cell as usize];
                    self.free_cells.push(cell);
                    self.outbox[dst as usize].push(OutItem {
                        at,
                        payload: OutPayload::Cell {
                            dir: dir_idx,
                            cell: c,
                        },
                    });
                }
                None => self.sched(at, Ev::CellArrive { dir: dir_idx, cell }),
            }
        }
        let d = &mut self.dirs[dir_idx as usize];
        if let Some(next) = d.queue.pop_front() {
            d.in_service = Some(next);
            let t = serialization_time(self.cells[next as usize].wire_bytes as u64, rate_bps);
            self.sched(now + t, Ev::TxDone { dir: dir_idx });
        }
    }

    fn on_cell_arrive(&mut self, now: SimTime, dir_idx: u32, cell: CellRef) {
        let d = &self.dirs[dir_idx as usize];
        if !d.up {
            self.stats.cells_dropped.inc();
            self.stats.note_loss(now);
            self.free_cells.push(cell);
            return;
        }
        let node = d.dst_node;
        let fe = self.fe_of_node[node.0 as usize];
        if fe != u32::MAX {
            self.forward_at_fe(now, fe as usize, cell);
        } else {
            let fa = self.fa_of_node[node.0 as usize];
            let c = self.cells[cell as usize];
            self.free_cells.push(cell);
            debug_assert_eq!(fa, c.dst_fa, "cell delivered to wrong FA");
            self.receive_at_fa(now, fa, c);
        }
    }

    /// Fabric Element forwarding: eligible links via the reachability
    /// table with downward preference, then spray.
    fn forward_at_fe(&mut self, now: SimTime, fe: usize, cell: CellRef) {
        let dst = self.cells[cell as usize].dst_fa;
        let generation = self.fes[fe].reach.generation;
        let needs_build =
            !matches!(self.fes[fe].sprayers.get(&dst), Some((g, _)) if *g == generation);
        if needs_build {
            // The table only ever holds plan candidates (seeding and
            // advert filtering both go through `plan.dir_dsts`), so the
            // eligible set *is* the spray set — no tier preference
            // needed: on Clos shapes the strictly-decreasing potential
            // already makes the destination pod's down-link the only
            // candidate where down-preference used to apply.
            let mut scratch = std::mem::take(&mut self.scratch);
            self.fes[fe].reach.eligible_into(dst, &mut scratch);
            if scratch.is_empty() {
                // No path: the cell is lost (reassembly timeout cleans up).
                self.scratch = scratch;
                self.stats.cells_dropped.inc();
                self.stats.note_loss(now);
                self.free_cells.push(cell);
                return;
            }
            match self.fes[fe].sprayers.entry(dst) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let v = e.get_mut();
                    v.0 = generation;
                    v.1.set_links_from(&scratch);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let rng =
                        DetRng::from_parts(self.seed, (1 << 40) | ((fe as u64) << 20) | dst as u64);
                    let sprayer =
                        Sprayer::new(scratch.clone(), self.cfg.spray_rounds_per_shuffle, rng);
                    v.insert((generation, sprayer));
                }
            }
            self.scratch = scratch;
        }
        let port = {
            let (_, sprayer) = self.fes[fe].sprayers.get_mut(&dst).unwrap();
            sprayer.next()
        };
        let out_dir = self.fes[fe].out_dirs[port as usize];
        self.push_cell(now, out_dir, cell);
    }

    /// Destination Fabric Adapter: reassembly, FCI pickup, egress.
    fn receive_at_fa(&mut self, now: SimTime, fa: u32, cell: Cell) {
        self.stats.cells_delivered.inc();
        if self.measuring(now) {
            let lat_ns = now.since(cell.sent_at).as_nanos_f64() as u64;
            self.stats.cell_latency_ns.record(lat_ns);
        }
        let Some(burst) = self.bursts.get_mut(&cell.burst.0) else {
            // Burst already timed out and discarded.
            return;
        };
        burst.received += 1;
        let port = burst.dst_port;
        let complete = burst.complete();
        if cell.fci {
            self.fas[fa as usize].ports[port as usize].sched.on_fci(now);
        }
        if complete {
            let burst = self.bursts.remove(&cell.burst.0).expect("just updated");
            for pkt in burst.packets {
                self.egress_enqueue(now, fa, port, pkt);
            }
        }
    }

    // --- egress (host-facing) ---

    fn egress_enqueue(&mut self, now: SimTime, fa: u32, port: u8, pkt: Packet) {
        let host_bps = self.cfg.host_port_bps;
        let hiwat = self.cfg.egress_hiwat_bytes;
        let start_tx = {
            let ps = &mut self.fas[fa as usize].ports[port as usize];
            ps.egress_bytes += pkt.bytes as u64;
            if ps.egress_bytes > self.stats.max_egress_bytes {
                self.stats.max_egress_bytes = ps.egress_bytes;
            }
            ps.tx_queue.push_back(pkt);
            let start = !ps.tx_busy;
            if start {
                ps.tx_busy = true;
            }
            if ps.egress_bytes >= hiwat && !ps.sched.is_paused() {
                ps.sched.pause();
            }
            start
        };
        if start_tx {
            let t = serialization_time(pkt.bytes as u64, host_bps);
            self.sched(now + t, Ev::PortTxDone { fa, port });
        }
    }

    fn on_port_tx_done(&mut self, now: SimTime, fa: u32, port: u8) {
        let host_bps = self.cfg.host_port_bps;
        let lowat = self.cfg.egress_lowat_bytes;
        let measuring = self.measuring(now);
        let ps = &mut self.fas[fa as usize].ports[port as usize];
        let pkt = ps.tx_queue.pop_front().expect("PortTxDone without packet");
        ps.egress_bytes -= pkt.bytes as u64;
        let next_tx = ps.tx_queue.front().map(|next| next.bytes);
        match next_tx {
            Some(bytes) => {
                let t = serialization_time(bytes as u64, host_bps);
                self.sched(now + t, Ev::PortTxDone { fa, port });
            }
            None => self.fas[fa as usize].ports[port as usize].tx_busy = false,
        }
        let ps = &mut self.fas[fa as usize].ports[port as usize];
        let resume = ps.egress_bytes <= lowat && ps.sched.is_paused();
        if resume && ps.sched.resume() {
            self.arm_credit_timer(now, fa, port);
        }
        self.stats.packets_delivered.inc();
        self.stats.bytes_delivered.add(pkt.bytes as u64);
        self.stats.delivered_per_fa[fa as usize] += pkt.bytes as u64;
        self.stats.delivered_per_port[fa as usize][port as usize] += pkt.bytes as u64;
        if measuring {
            let lat = now.since(pkt.injected_at).as_nanos_f64() as u64;
            self.stats.packet_latency_ns.record(lat);
        }
        // Finite-flow completion: the last byte of a message leaving the
        // egress wire ends its FCT. The flow id rides in the packet, so
        // completion is detected purely from destination-side state.
        if pkt.flow != NO_FLOW {
            match &mut self.msg_book {
                MsgBook::Table { remaining, .. } => {
                    let rem = &mut remaining[pkt.flow as usize];
                    *rem -= pkt.bytes as u64;
                    if *rem == 0 {
                        self.stats.flows.finish(pkt.flow, now);
                    }
                }
                MsgBook::Stream { active, .. } => {
                    let sm = active
                        .get_mut(&pkt.flow)
                        .expect("delivery for an unknown streamed flow");
                    sm.remaining -= pkt.bytes as u64;
                    if sm.remaining == 0 {
                        let start = active.remove(&pkt.flow).expect("just seen").start;
                        self.stats.flows.record_fct(now.since(start));
                    }
                }
            }
        }
    }

    // --- ingress / VOQ / credits ---

    /// Shared FA ingress admission, used by single-packet injection and
    /// the message layer so the two can never diverge on ingress
    /// semantics:
    ///
    /// * §5.6 low-latency path — the packet bypasses the credit round
    ///   trip and is packed and sprayed immediately ([`Ingress::Bypassed`];
    ///   the configuration must keep the aggregate low-latency bandwidth
    ///   small, as the paper assumes);
    /// * §3.1 — persistent oversubscription drops at the Fabric Adapter
    ///   ([`Ingress::Dropped`]);
    /// * otherwise the packet joins its VOQ and [`Ingress::Queued`]
    ///   carries the bytes the caller must announce to the destination
    ///   scheduler (per packet or batched, the caller's choice).
    fn admit_at_ingress(&mut self, now: SimTime, pkt: Packet) -> Ingress {
        self.stats.packets_injected.inc();
        let key = VoqKey {
            dst_fa: pkt.dst_fa,
            dst_port: pkt.dst_port,
            tc: pkt.tc,
        };
        if Some(pkt.tc) == self.cfg.low_latency_tc {
            let src_fa = pkt.src_fa;
            self.transmit_burst(now, src_fa, key, vec![pkt]);
            return Ingress::Bypassed;
        }
        let voq = self.fas[pkt.src_fa as usize].voqs.entry(key).or_default();
        if let Some(cap) = self.cfg.voq_max_bytes {
            if voq.bytes() + pkt.bytes as u64 > cap {
                self.stats.ingress_drops.inc();
                return Ingress::Dropped;
            }
        }
        let delta = voq.push(pkt);
        if voq.bytes() > self.stats.max_voq_bytes {
            self.stats.max_voq_bytes = voq.bytes();
        }
        Ingress::Queued(delta)
    }

    fn on_inject(&mut self, now: SimTime, pkt: Packet) {
        let (src_fa, key) = (
            pkt.src_fa,
            VoqKey {
                dst_fa: pkt.dst_fa,
                dst_port: pkt.dst_port,
                tc: pkt.tc,
            },
        );
        if let Ingress::Queued(delta) = self.admit_at_ingress(now, pkt) {
            self.sched(
                now + self.cfg.ctrl_latency,
                Ev::CtrlRequest {
                    dst_fa: key.dst_fa,
                    port: key.dst_port,
                    tc: key.tc,
                    src_fa,
                    bytes: delta,
                },
            );
        }
    }

    fn on_request(&mut self, now: SimTime, dst_fa: u32, port: u8, tc: u8, src_fa: u32, bytes: u64) {
        let ps = &mut self.fas[dst_fa as usize].ports[port as usize];
        if ps.sched.request(SchedVoq { src_fa, tc }, bytes) {
            self.arm_credit_timer(now, dst_fa, port);
        }
    }

    fn arm_credit_timer(&mut self, now: SimTime, fa: u32, port: u8) {
        let ps = &mut self.fas[fa as usize].ports[port as usize];
        if !ps.sched.timer_armed {
            ps.sched.timer_armed = true;
            self.sched(now, Ev::CreditTick { fa, port });
        }
    }

    fn on_credit_tick(&mut self, now: SimTime, fa: u32, port: u8) {
        let ctrl_latency = self.cfg.ctrl_latency;
        let ps = &mut self.fas[fa as usize].ports[port as usize];
        ps.sched.recover();
        if ps.sched.is_paused() {
            ps.sched.timer_armed = false;
            return;
        }
        match ps.sched.next_grant() {
            None => {
                ps.sched.timer_armed = false;
            }
            Some(voq) => {
                let interval = ps.sched.interval();
                self.stats.credits_sent.inc();
                self.sched(
                    now + ctrl_latency,
                    Ev::CtrlCredit {
                        src_fa: voq.src_fa,
                        key: VoqKey {
                            dst_fa: fa,
                            dst_port: port,
                            tc: voq.tc,
                        },
                    },
                );
                self.sched(now + interval, Ev::CreditTick { fa, port });
            }
        }
    }

    /// A credit grant arriving at the source FA: dequeue a burst, pack it
    /// into cells and spray them over the eligible uplinks.
    fn on_credit(&mut self, now: SimTime, src_fa: u32, key: VoqKey) {
        let credit = self.cfg.credit_bytes as u64;
        let packets = {
            let fa = &mut self.fas[src_fa as usize];
            let Some(voq) = fa.voqs.get_mut(&key) else {
                return;
            };
            voq.grant(credit, credit as i64)
        };
        // Saturation refill keeps the VOQ (and the scheduler's view of it)
        // backlogged.
        if self.fas[src_fa as usize].sat.is_some() {
            self.top_up_voq(src_fa, key);
        }
        if packets.is_empty() {
            return;
        }
        self.transmit_burst(now, src_fa, key, packets);
    }

    /// Pack a dequeued burst into cells and spray them over the eligible
    /// uplinks (shared by the credit path and the §5.6 low-latency path).
    fn transmit_burst(&mut self, now: SimTime, src_fa: u32, key: VoqKey, packets: Vec<Packet>) {
        let burst_id = {
            let fa = &mut self.fas[src_fa as usize];
            let id = BurstId(((src_fa as u64 + 1) << 40) | fa.next_burst);
            fa.next_burst += 1;
            id
        };
        let pb = pack_burst(
            burst_id,
            packets,
            self.cfg.cell_bytes,
            self.cfg.cell_header_bytes,
            self.cfg.packet_packing,
            now,
        );

        // Spray.
        let dst = key.dst_fa;
        let generation = self.fas[src_fa as usize].reach.generation;
        let needs_build = !matches!(
            self.fas[src_fa as usize].sprayers.get(&dst),
            Some((g, _)) if *g == generation
        );
        let mut reachable = true;
        if needs_build {
            let mut scratch = std::mem::take(&mut self.scratch);
            self.fas[src_fa as usize]
                .reach
                .eligible_into(dst, &mut scratch);
            if scratch.is_empty() {
                // Destination unreachable: the whole burst is lost; the
                // reassembly timeout will count its packets as discarded.
                // The loss happens *now* (the timeout is its delayed echo).
                reachable = false;
                self.stats.note_loss(now);
            } else {
                match self.fas[src_fa as usize].sprayers.entry(dst) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let v = e.get_mut();
                        v.0 = generation;
                        v.1.set_links_from(&scratch);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let rng =
                            DetRng::from_parts(self.seed, ((src_fa as u64) << 20) | dst as u64);
                        let sprayer =
                            Sprayer::new(scratch.clone(), self.cfg.spray_rounds_per_shuffle, rng);
                        v.insert((generation, sprayer));
                    }
                }
            }
            self.scratch = scratch;
        }
        if reachable {
            let n_cells = pb.burst.n_cells;
            for seq in 0..n_cells {
                let port = {
                    let (_, s) = self.fas[src_fa as usize].sprayers.get_mut(&dst).unwrap();
                    s.next()
                };
                let out_dir = self.fas[src_fa as usize].out_dirs[port as usize];
                let cell = self.alloc_cell(pb.cell(seq, now));
                self.stats.cells_sent.inc();
                self.push_cell(now, out_dir, cell);
            }
        }

        // Hand the reassembly record to the destination FA's owner. On
        // the same shard (always, when sequential) it is installed
        // directly; otherwise it travels as a `BurstOpen` delayed by the
        // pair's closed lookahead bound — provably before the burst's
        // first cell, whose cross-shard path accumulates at least that
        // much propagation (every hop carries at least its pair's direct
        // bound, and the closure covers the chain) plus a serialization.
        // Nothing reads the record in between, so the two installs are
        // observably identical. The scalar lookahead would also be
        // sound, but under the matrix clock the destination's window can
        // extend past `now + scalar`, and a record sent only one scalar
        // ahead would land inside an already-executed window.
        if self.owns_fa(dst) {
            self.open_burst(pb.burst);
        } else {
            let view = self.view.as_ref().expect("sharded");
            let bound = view
                .matrix
                .bound(view.shard as usize, self.shard_of_fa[dst as usize] as usize)
                .expect("control traffic bounds every shard pair");
            self.sched(
                now + bound,
                Ev::BurstOpen {
                    burst: Box::new(pb.burst),
                },
            );
        }
    }

    /// Install a burst's reassembly record and arm its timeout (runs on
    /// the shard owning the destination FA).
    fn open_burst(&mut self, burst: Burst) {
        let at = burst.packed_at + self.cfg.reassembly_timeout;
        self.sched(at, Ev::BurstTimeout { burst: burst.id });
        self.bursts.insert(burst.id.0, burst);
    }

    /// Refill a saturated VOQ to its backlog target with synthetic
    /// packets, announcing the new demand to the destination scheduler
    /// with an ordinary request control message (one per refill — the
    /// standing backlog keeps the scheduler's view positive across the
    /// control latency).
    fn top_up_voq(&mut self, src_fa: u32, key: VoqKey) {
        // Only the two scalars are needed here; cloning the whole
        // `SatState` (with its targets Vec) per credit grant was one of
        // the hot-path allocations this engine used to make.
        let Some((packet_bytes, backlog_bytes)) = self.fas[src_fa as usize]
            .sat
            .as_ref()
            .map(|s| (s.packet_bytes, s.backlog_bytes))
        else {
            return;
        };
        let now = self.events.now();
        let mut added = 0u64;
        {
            while self.fas[src_fa as usize]
                .voqs
                .get(&key)
                .is_none_or(|v| v.bytes() < backlog_bytes)
            {
                let id = self.runtime_packet_id(src_fa);
                let fa = &mut self.fas[src_fa as usize];
                let voq = fa.voqs.entry(key).or_default();
                let pkt = Packet {
                    id,
                    src_fa,
                    dst_fa: key.dst_fa,
                    dst_port: key.dst_port,
                    tc: key.tc,
                    bytes: packet_bytes,
                    flow: NO_FLOW,
                    injected_at: now,
                };
                added += voq.push(pkt);
                self.stats.packets_injected.inc();
            }
        }
        if added > 0 {
            // Announce the refilled demand through an ordinary request
            // control message. (This used to poke the destination
            // scheduler directly to save events; the message makes the
            // path uniform — and shard-safe, since the destination may
            // live on another shard.)
            self.sched(
                now + self.cfg.ctrl_latency,
                Ev::CtrlRequest {
                    dst_fa: key.dst_fa,
                    port: key.dst_port,
                    tc: key.tc,
                    src_fa,
                    bytes: added,
                },
            );
        }
    }

    fn on_burst_timeout(&mut self, _now: SimTime, burst: BurstId) {
        if let Some(b) = self.bursts.get(&burst.0) {
            if !b.complete() {
                let b = self.bursts.remove(&burst.0).unwrap();
                self.stats.packets_discarded.add(b.packets.len() as u64);
                // Discarded message packets leave their flow unfinished
                // forever (there is no retransmission — that is the
                // experiment's point); nothing else to clean up, since
                // flow membership rides in the packets themselves.
            } else {
                self.bursts.remove(&burst.0);
            }
        }
    }

    // --- reachability protocol ---

    fn on_reach_tick(&mut self, now: SimTime, node: NodeId) {
        let interval = self
            .cfg
            .reach_interval
            .expect("reach tick without interval");
        let th = self.cfg.reach_miss_threshold as u64;
        let deadline_ago = SimDuration::from_ps(interval.as_ps().saturating_mul(th));
        let deadline = SimTime(now.as_ps().saturating_sub(deadline_ago.as_ps()));

        let fa = self.fa_of_node[node.0 as usize];
        if fa != u32::MAX {
            // Expire stale uplinks (only meaningful once traffic ran a while).
            if now.as_ps() > deadline_ago.as_ps() && self.fas[fa as usize].reach.expire(deadline) {
                self.stats.note_reach_change(now);
            }
            // Advertise self on every fabric port (indexing per port
            // avoids cloning the out_dirs Vec every tick).
            let ad = Arc::new(vec![fa]);
            for p in 0..self.fas[fa as usize].out_dirs.len() {
                let dir = self.fas[fa as usize].out_dirs[p];
                self.send_reach(now, dir, ad.clone());
            }
        } else {
            let fe = self.fe_of_node[node.0 as usize] as usize;
            if now.as_ps() > deadline_ago.as_ps() && self.fes[fe].reach.expire(deadline) {
                self.stats.note_reach_change(now);
            }
            // One advertisement for every neighbor: the union of what
            // all my ports can reach. Receivers filter it against the
            // route plan's candidate set for their direction toward me,
            // so tiered up-ad/down-ad asymmetry falls out structurally
            // instead of being encoded in the message kind.
            let mut scratch = std::mem::take(&mut self.scratch);
            let st = &self.fes[fe];
            st.reach.union_over_into(0..st.links.len(), &mut scratch);
            let total = Arc::new(scratch.clone());
            self.scratch = scratch;
            for p in 0..self.fes[fe].links.len() {
                let dir = self.fes[fe].out_dirs[p];
                self.send_reach(now, dir, total.clone());
            }
        }
        self.sched(now + interval, Ev::ReachTick { node });
    }

    fn send_reach(&mut self, now: SimTime, dir_idx: u32, fas: Arc<Vec<u32>>) {
        let d = &self.dirs[dir_idx as usize];
        if !d.up {
            return; // a failed link carries no reachability cells
        }
        let err = d.error_rate;
        let (prop, dst_node, dst_port_index) = (d.prop, d.dst_node, d.dst_port_index);
        if err > 0.0 && self.err_rngs[dir_idx as usize].chance(err) {
            return; // reachability cell lost to the error process
        }
        // §5.10: a link whose error rate crossed the threshold marks
        // itself faulty on its reachability cells, so the receiver
        // excludes it even when a cell does get through.
        let faulty = err > FAULTY_BER_THRESHOLD;
        self.sched(
            now + prop,
            Ev::ReachMsg {
                node: dst_node,
                port: dst_port_index,
                fas,
                faulty,
            },
        );
    }

    fn on_reach_msg(&mut self, now: SimTime, node: NodeId, port: u16, fas: &[u32], faulty: bool) {
        let revive = self.cfg.reach_miss_threshold;
        let fa = self.fa_of_node[node.0 as usize];
        let (table, out_dir) = if fa != u32::MAX {
            let st = &mut self.fas[fa as usize];
            (&mut st.reach, st.out_dirs[port as usize])
        } else {
            let fe = self.fe_of_node[node.0 as usize] as usize;
            let st = &mut self.fes[fe];
            (&mut st.reach, st.out_dirs[port as usize])
        };
        let changed = if faulty {
            table.mark_faulty(port as usize, now)
        } else {
            // Filter the sender's full reach down to the destinations
            // this direction is a plan candidate for — the structural
            // replacement for Clos up-ad/down-ad asymmetry, and the
            // invariant that keeps dynamic tables inside the loop-free
            // candidate sets on every topology shape.
            let plan = Arc::clone(&self.plan);
            let dset = &plan.dir_dsts[out_dir as usize];
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend(fas.iter().copied().filter(|&d| dset.contains(d)));
            let changed = table.on_advert(port as usize, &scratch, now, revive);
            self.scratch = scratch;
            changed
        };
        if changed {
            self.stats.note_reach_change(now);
        }
    }
}

/// Utilization math behind [`FabricEngine::fabric_utilization`], factored
/// out so the degenerate edges (zero Fabric Adapters, zero-length window)
/// are unit-testable without constructing a degenerate engine — the
/// engine constructor rejects FA-less topologies, but the method must
/// still be total.
fn payload_utilization(
    num_fas: usize,
    uplinks_per_fa: usize,
    link_bps: u64,
    payload_fraction: f64,
    delivered_bytes: u64,
    window: SimDuration,
) -> f64 {
    if num_fas == 0 || uplinks_per_fa == 0 || window == SimDuration::ZERO {
        return 0.0;
    }
    let capacity_bps = num_fas as f64 * uplinks_per_fa as f64 * link_bps as f64 * payload_fraction;
    if capacity_bps <= 0.0 {
        return 0.0;
    }
    delivered_bytes as f64 * 8.0 / (capacity_bps * window.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_topo::builders::{
        single_tier, three_tier, two_tier, SingleTierParams, ThreeTierParams, TwoTierParams,
    };

    fn small_engine(cfg: FabricConfig) -> FabricEngine {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        FabricEngine::new(tt.topo, cfg)
    }

    fn cfg_small() -> FabricConfig {
        FabricConfig {
            host_ports: 2,
            host_port_bps: stardust_sim::units::gbps(40),
            ctrl_latency: SimDuration::from_micros(1),
            ..FabricConfig::default()
        }
    }

    #[test]
    fn single_packet_traverses_the_fabric() {
        let mut e = small_engine(cfg_small());
        e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
        e.run_until(SimTime::from_millis(2));
        assert_eq!(e.stats().packets_injected.get(), 1);
        assert_eq!(e.stats().packets_delivered.get(), 1);
        assert_eq!(e.stats().bytes_delivered.get(), 1500);
        assert_eq!(e.stats().packets_discarded.get(), 0);
        assert_eq!(e.stats().cells_dropped.get(), 0);
        // 1500B in ≤256B cells: ceil(1500/248) = 7 cells.
        assert_eq!(e.stats().cells_sent.get(), 7);
        assert_eq!(e.stats().cells_delivered.get(), 7);
    }

    #[test]
    fn packet_latency_is_physical() {
        let mut e = small_engine(cfg_small());
        e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
        e.run_until(SimTime::from_millis(2));
        // Control round trip (request + credit = 2µs) + 4 hops of ~0.5µs
        // propagation + serialization. Expect single-digit µs, not ms.
        let lat = e.stats().packet_latency_ns.mean();
        assert!(lat > 2_000.0, "latency {lat}ns too low");
        assert!(lat < 20_000.0, "latency {lat}ns too high");
    }

    #[test]
    fn every_pair_communicates() {
        let mut e = small_engine(cfg_small());
        let n = e.num_fas() as u32;
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    e.inject(SimTime::ZERO, src, dst, 0, 0, 900);
                }
            }
        }
        e.run_until(SimTime::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), (n * (n - 1)) as u64);
        assert_eq!(e.stats().cells_dropped.get(), 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut e = small_engine(cfg_small());
            let n = e.num_fas() as u32;
            for src in 0..n {
                e.inject(SimTime::ZERO, src, (src + 1) % n, 0, 0, 4000);
            }
            e.run_until(SimTime::from_millis(2));
            (
                e.stats().packets_delivered.get(),
                e.stats().cells_sent.get(),
                e.stats().packet_latency_ns.mean().to_bits(),
                e.events_executed(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn saturation_mode_fills_the_fabric() {
        let mut cfg = cfg_small();
        cfg.host_port_bps = stardust_sim::units::gbps(40);
        let mut e = small_engine(cfg);
        e.saturate_all_to_all(750, 32 * 1024);
        e.begin_measurement(SimTime::from_micros(200));
        e.run_until(SimTime::from_millis(2));
        assert!(e.stats().packets_delivered.get() > 1000);
        assert_eq!(
            e.stats().cells_dropped.get(),
            0,
            "scheduled fabric is lossless"
        );
        // The last-stage queue distribution collected samples.
        assert!(e.stats().last_stage_queue.count() > 1000);
    }

    #[test]
    fn lossless_under_incast() {
        // §5.4: incast accumulates in ingress VOQs, no fabric loss.
        let cfg = cfg_small();
        let mut e = small_engine(cfg);
        let n = e.num_fas() as u32;
        // Every other FA sends a 100KB burst to FA 0 port 0.
        for src in 1..n {
            for i in 0..100 {
                e.inject(SimTime::from_nanos(i * 100), src, 0, 0, 0, 1000);
            }
        }
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.stats().packets_delivered.get(), ((n - 1) * 100) as u64);
        assert_eq!(e.stats().cells_dropped.get(), 0);
        assert_eq!(e.stats().packets_discarded.get(), 0);
    }

    #[test]
    fn three_tier_fabric_works_end_to_end() {
        // §5.1: deeper fabrics are just more tiers of the same Fabric
        // Element; the engine's up/down forwarding and the reachability
        // seeding are tier-count agnostic.
        let tt = three_tier(ThreeTierParams::small());
        let mut e = FabricEngine::new(tt.topo, cfg_small());
        let n = e.num_fas() as u32;
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    e.inject(SimTime::ZERO, src, dst, 0, 0, 1200);
                }
            }
        }
        e.run_until(SimTime::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), (n * (n - 1)) as u64);
        assert_eq!(e.stats().cells_dropped.get(), 0);
        // Cross-super-pod latency includes 6 hops of propagation.
        assert!(e.stats().cell_latency_ns.max() > 2_000);
    }

    #[test]
    fn three_tier_dynamic_reach_converges_and_heals() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        let tt = three_tier(ThreeTierParams::small());
        let victim = tt.fas[0];
        let uplink = tt.topo.up_links(victim)[0];
        let mut e = FabricEngine::new(tt.topo, cfg);
        e.run_until(SimTime::from_micros(200));
        e.fail_link(uplink);
        e.run_until(SimTime::from_micros(600));
        assert!(!e.fas[0].reach.port_up(0));
        let t0 = e.now();
        for i in 0..60u64 {
            e.inject(t0 + SimDuration::from_nanos(i * 700), 0, 15, 0, 0, 1500);
        }
        e.run_until(t0 + SimDuration::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), 60);
        assert_eq!(e.stats().packets_discarded.get(), 0);
    }

    #[test]
    fn single_tier_system_works() {
        let st = single_tier(SingleTierParams {
            num_fa: 8,
            fa_uplinks: 8,
            fe_count: 4,
            meters: 2,
        });
        let mut e = FabricEngine::new(st.topo, cfg_small());
        for src in 0..8u32 {
            e.inject(SimTime::ZERO, src, (src + 3) % 8, 0, 0, 9000);
        }
        e.run_until(SimTime::from_millis(2));
        assert_eq!(e.stats().packets_delivered.get(), 8);
        assert_eq!(e.stats().cells_dropped.get(), 0);
    }

    #[test]
    fn static_mode_link_failure_blackholes() {
        // Without the reachability protocol a failed link silently eats
        // its share of cells (motivates §5.9's self-healing).
        let mut e = small_engine(cfg_small());
        let fa0_uplink = e.fas[0].uplinks[0];
        e.fail_link(fa0_uplink);
        for i in 0..50 {
            e.inject(SimTime::from_nanos(i * 1000), 0, 8, 0, 0, 4000);
        }
        e.run_until(SimTime::from_millis(5));
        assert!(
            e.stats().packets_discarded.get() > 0,
            "some bursts must time out"
        );
        assert!(e.stats().cells_dropped.get() > 0);
    }

    #[test]
    fn dynamic_reach_heals_link_failure() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        cfg.reach_miss_threshold = 3;
        let mut e = small_engine(cfg);
        // Let the protocol breathe, then fail one of FA0's uplinks.
        e.run_until(SimTime::from_micros(100));
        let link = e.fas[0].uplinks[0];
        e.fail_link(link);
        // Wait for detection (3 missed 10µs intervals + margin).
        e.run_until(SimTime::from_micros(300));
        assert!(
            !e.fas[0].reach.port_up(0),
            "FA should have declared its uplink dead"
        );
        // Traffic now flows around the dead link with zero loss.
        let t0 = e.now();
        for i in 0..100u64 {
            e.inject(t0 + SimDuration::from_nanos(i * 500), 0, 8, 0, 0, 2000);
        }
        e.run_until(t0 + SimDuration::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), 100);
        assert_eq!(e.stats().packets_discarded.get(), 0);
    }

    #[test]
    fn restored_link_revives_after_good_streak() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        let mut e = small_engine(cfg);
        e.run_until(SimTime::from_micros(100));
        let link = e.fas[0].uplinks[0];
        e.fail_link(link);
        e.run_until(SimTime::from_micros(300));
        assert!(!e.fas[0].reach.port_up(0));
        e.restore_link(link);
        e.run_until(SimTime::from_micros(600));
        assert!(e.fas[0].reach.port_up(0), "link should be re-admitted");
    }

    #[test]
    fn traffic_classes_strict_priority_delivery() {
        // Low-TC (high priority) traffic completes ahead of high-TC when
        // both compete for the same egress port.
        let mut e = small_engine(cfg_small());
        for i in 0..200u64 {
            e.inject(SimTime::from_nanos(i), 1, 0, 0, 1, 1500); // low prio
            e.inject(SimTime::from_nanos(i), 2, 0, 0, 0, 1500); // high prio
        }
        e.run_until(SimTime::from_millis(20));
        assert_eq!(e.stats().packets_delivered.get(), 400);
        assert_eq!(e.stats().cells_dropped.get(), 0);
    }

    #[test]
    fn fabric_utilization_accounting() {
        // 2 ports × 40G host side vs 2 uplinks × 50G fabric: util ≈
        // 80/96.9 ≈ 0.83 of payload capacity when saturated.
        let mut e = small_engine(cfg_small());
        e.saturate_all_to_all(750, 16 * 1024);
        e.run_until(SimTime::from_millis(2));
        let u = e.fabric_utilization(SimDuration::from_millis(2));
        assert!(u > 0.75 && u < 0.90, "utilization {u}");
    }

    #[test]
    fn host_flow_control_avoids_ingress_drops() {
        // §5.4: "Even if the packet buffers are not sufficient, the source
        // Fabric Adapter can avoid packet loss by sending flow control
        // messages back to the host."
        let run = |fc: bool| {
            let mut cfg = cfg_small();
            cfg.voq_max_bytes = Some(16 * 1024);
            cfg.host_fc = fc.then_some((12 * 1024, 8 * 1024));
            let mut e = small_engine(cfg);
            for src in 1..8u32 {
                e.add_cbr_flow(
                    src,
                    0,
                    0,
                    0,
                    stardust_sim::units::gbps(40),
                    1500,
                    SimTime::ZERO,
                    SimTime::from_millis(2),
                );
            }
            e.run_until(SimTime::from_millis(4));
            (
                e.stats().ingress_drops.get(),
                e.stats().host_fc_pauses.get(),
            )
        };
        let (drops_nofc, pauses_nofc) = run(false);
        let (drops_fc, pauses_fc) = run(true);
        assert!(drops_nofc > 0, "without FC the VOQ cap must drop");
        assert_eq!(pauses_nofc, 0);
        assert_eq!(drops_fc, 0, "with FC nothing is dropped at ingress");
        assert!(pauses_fc > 0, "FC must actually have paused the sources");
    }

    #[test]
    fn voq_cap_drops_persistent_oversubscription() {
        // §3.1: long-term oversubscription drops at the Fabric Adapter.
        let mut cfg = cfg_small();
        cfg.voq_max_bytes = Some(16 * 1024);
        let mut e = small_engine(cfg);
        // Offer far more toward one port than it can drain.
        for src in 1..8u32 {
            e.add_cbr_flow(
                src,
                0,
                0,
                0,
                stardust_sim::units::gbps(40),
                1500,
                SimTime::ZERO,
                SimTime::from_millis(2),
            );
        }
        e.run_until(SimTime::from_millis(4));
        let s = e.stats();
        assert!(s.ingress_drops.get() > 0, "VOQ cap must drop");
        assert_eq!(s.cells_dropped.get(), 0, "the fabric itself stays lossless");
        // Every VOQ stayed within its cap.
        assert!(s.max_voq_bytes <= 16 * 1024);
    }

    #[test]
    fn low_latency_tc_skips_the_credit_round_trip() {
        // §5.6: "a low latency VOQ starts transmitting immediately."
        let fct_of = |ll: Option<u8>| {
            let mut cfg = cfg_small();
            cfg.low_latency_tc = ll;
            let mut e = small_engine(cfg);
            e.inject(SimTime::ZERO, 0, 8, 0, ll.unwrap_or(0), 256);
            e.run_until(SimTime::from_millis(1));
            assert_eq!(e.stats().packets_delivered.get(), 1);
            e.stats().packet_latency_ns.mean()
        };
        let normal = fct_of(None);
        let low_lat = fct_of(Some(0));
        // The credit round trip is 2 × 1µs of control latency; the LL path
        // saves it.
        assert!(
            low_lat < normal - 1_500.0,
            "low-latency {low_lat}ns vs normal {normal}ns"
        );
    }

    #[test]
    fn link_errors_lose_cells_and_protocol_excludes_the_link() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        cfg.reach_miss_threshold = 3;
        let mut e = small_engine(cfg);
        e.run_until(SimTime::from_micros(50));
        let victim = e.fas[0].uplinks[0];
        // 60% cell loss: reachability messages miss 3 in a row with
        // probability 0.216 per window — the link is declared faulty
        // within a few hundred µs.
        e.set_link_error_rate(victim, 0.6);
        e.run_until(SimTime::from_millis(2));
        assert!(!e.fas[0].reach.port_up(0), "noisy link must be excluded");
        // Traffic now flows cleanly around it.
        let t0 = e.now();
        for i in 0..100u64 {
            e.inject(t0 + SimDuration::from_nanos(i * 500), 0, 8, 0, 0, 2000);
        }
        e.run_until(t0 + SimDuration::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), 100);
        assert_eq!(e.stats().packets_discarded.get(), 0);
        // Repairing the link (error rate back to zero) re-admits it after
        // the good-streak threshold.
        e.set_link_error_rate(victim, 0.0);
        let t1 = e.now();
        e.run_until(t1 + SimDuration::from_millis(1));
        assert!(e.fas[0].reach.port_up(0), "repaired link must revive");
    }

    #[test]
    fn wrr_policy_shares_port_bandwidth() {
        use crate::config::SchedPolicy;
        let mut cfg = cfg_small();
        cfg.sched_policy = SchedPolicy::Wrr(vec![3, 1]);
        let mut e = small_engine(cfg);
        // Two saturating flows of different classes into one port.
        let stop = SimTime::from_millis(4);
        e.add_cbr_flow(
            1,
            0,
            0,
            0,
            stardust_sim::units::gbps(40),
            1500,
            SimTime::ZERO,
            stop,
        );
        e.add_cbr_flow(
            2,
            0,
            0,
            1,
            stardust_sim::units::gbps(40),
            1500,
            SimTime::ZERO,
            stop,
        );
        e.run_until(SimTime::from_millis(4));
        let a = e.stats().delivered_per_fa[0];
        assert!(a > 0);
        // Class split ≈ 3:1 at the shared port: check via packet latency
        // proxy — class 1 backlog grows (its VOQ got 1/4 of the port).
        // Direct check: delivered bytes per source FA.
        let d1 = e.stats().delivered_per_port[0][0];
        assert!(d1 > 0);
        // With Strict instead, class 1 would be fully starved; WRR must
        // deliver a substantial share to both. Compare against strict run:
        let mut cfg2 = cfg_small();
        cfg2.sched_policy = SchedPolicy::Strict;
        let mut e2 = small_engine(cfg2);
        e2.add_cbr_flow(
            1,
            0,
            0,
            0,
            stardust_sim::units::gbps(40),
            1500,
            SimTime::ZERO,
            stop,
        );
        e2.add_cbr_flow(
            2,
            0,
            0,
            1,
            stardust_sim::units::gbps(40),
            1500,
            SimTime::ZERO,
            stop,
        );
        e2.run_until(SimTime::from_millis(4));
        // Low class delivered strictly more under WRR than under strict.
        // (Both runs share seeds and arrival patterns.)
        let low_wrr = e.stats().packets_delivered.get();
        let low_strict = e2.stats().packets_delivered.get();
        assert!(
            low_wrr >= low_strict,
            "wrr {low_wrr} vs strict {low_strict}"
        );
    }

    #[test]
    fn gradual_growth_partially_populated_fabric() {
        // §5.1: "it is not necessary to populate the entire fabric from
        // the start ... adding Fabric Elements over time within a live
        // network." Model: start with half the spine links disabled,
        // verify lossless operation at reduced capacity, then enable them
        // live and verify capacity rises.
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        // Spine links occupy the tail of the link list: FA uplinks come
        // first (num_fa × t), then t1↔t2.
        let first_spine_link = 16 * 2;
        let spine_links: Vec<u32> = (first_spine_link..tt.topo.num_links() as u32).collect();
        let mut e = FabricEngine::new(tt.topo, cfg);
        // Disable half the spine (every other link).
        for &l in spine_links.iter().step_by(2) {
            e.fail_link(stardust_topo::LinkId(l));
        }
        e.run_until(SimTime::from_micros(500)); // protocol converges
        let stop1 = SimTime::from_millis(3);
        for src in 0..8u32 {
            e.add_cbr_flow(
                src,
                src + 8,
                0,
                0,
                stardust_sim::units::gbps(30),
                1500,
                e.now(),
                stop1,
            );
        }
        e.run_until(stop1 + SimDuration::from_millis(1));
        let delivered_half = e.stats().packets_delivered.get();
        let discarded_half = e.stats().packets_discarded.get();
        assert!(delivered_half > 0);
        assert_eq!(
            discarded_half, 0,
            "partially populated fabric is still lossless"
        );

        // "Install" the missing Fabric Elements live.
        for &l in spine_links.iter().step_by(2) {
            e.restore_link(stardust_topo::LinkId(l));
        }
        e.run_until(e.now() + SimDuration::from_micros(500));
        let t2 = e.now();
        let stop2 = t2 + SimDuration::from_millis(3);
        for src in 0..8u32 {
            e.add_cbr_flow(
                src,
                src + 8,
                0,
                0,
                stardust_sim::units::gbps(30),
                1500,
                t2,
                stop2,
            );
        }
        e.run_until(stop2 + SimDuration::from_millis(1));
        assert_eq!(e.stats().packets_discarded.get(), 0);
        assert!(e.stats().packets_delivered.get() > delivered_half);
    }

    #[test]
    #[should_panic(expected = "self-destined")]
    fn self_traffic_rejected() {
        let mut e = small_engine(cfg_small());
        e.inject(SimTime::ZERO, 0, 0, 0, 0, 100);
    }

    #[test]
    fn run_for_advances_by_full_duration() {
        // Regression: `pop_until` used to leave `now` at the last popped
        // event, so back-to-back `run_for(d)` calls advanced by less than
        // `d` each. The horizon must now be committed to the clock.
        let mut e = small_engine(cfg_small());
        e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
        e.run_for(SimDuration::from_micros(100));
        assert_eq!(e.now(), SimTime::from_micros(100));
        e.run_for(SimDuration::from_micros(100));
        assert_eq!(e.now(), SimTime::from_micros(200));
        // And an idle engine still advances.
        e.run_for(SimDuration::from_micros(50));
        assert_eq!(e.now(), SimTime::from_micros(250));
        assert_eq!(e.stats().packets_delivered.get(), 1);
    }

    #[test]
    fn fabric_utilization_degenerate_inputs_are_zero() {
        // Zero-length window on a live engine: 0.0, not a division by 0.
        let mut e = small_engine(cfg_small());
        e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
        e.run_until(SimTime::from_millis(1));
        assert!(e.stats().bytes_delivered.get() > 0);
        assert_eq!(e.fabric_utilization(SimDuration::ZERO), 0.0);
        // Zero-FA topology edge, via the factored-out math (the engine
        // constructor refuses FA-less topologies).
        let w = SimDuration::from_millis(1);
        assert_eq!(
            payload_utilization(0, 4, 50_000_000_000, 0.97, 1_000, w),
            0.0
        );
        assert_eq!(
            payload_utilization(4, 0, 50_000_000_000, 0.97, 1_000, w),
            0.0
        );
        // Sanity: the live path still reports a positive fraction.
        assert!(e.fabric_utilization(SimDuration::from_millis(1)) > 0.0);
    }

    #[test]
    fn heap_core_engine_matches_calendar_core() {
        // The event core must be behavior-invisible: the same workload on
        // the reference heap core and on the calendar core produces
        // bit-identical measurements (the full §6.2 version of this check
        // lives in tests/determinism.rs).
        fn run<K: stardust_sim::CoreKind>() -> FabricStats {
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut e = FabricEngine::<K>::with_core(tt.topo, cfg_small());
            let n = e.num_fas() as u32;
            for src in 0..n {
                e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
                e.inject(
                    SimTime::from_nanos(src as u64 * 97),
                    src,
                    (src + 1) % n,
                    1,
                    1,
                    700,
                );
            }
            e.run_until(SimTime::from_millis(2));
            std::mem::replace(&mut e.stats, FabricStats::new(0, 0, false))
        }
        let heap = run::<stardust_sim::HeapCore>();
        let cal = run::<stardust_sim::CalendarCore>();
        assert_eq!(heap, cal, "event cores diverged");
        assert!(heap.packets_delivered.get() > 0);
    }

    #[test]
    fn message_flow_completes_and_records_fct() {
        let mut e = small_engine(cfg_small());
        let id = e.add_message(0, 8, 0, 0, 100_000, SimTime::ZERO);
        e.run_until(SimTime::from_millis(5));
        let flows = &e.stats().flows;
        assert_eq!(flows.len(), 1);
        assert_eq!(flows.completed(), 1);
        let rec = flows.records()[id as usize];
        assert_eq!((rec.src, rec.dst, rec.bytes), (0, 8, 100_000));
        let fct = rec.fct().expect("finished");
        // Credit round trip (2 × 1µs control latency) bounds it below;
        // 100 KB at 40G host egress is 20µs of serialization alone.
        assert!(fct > SimDuration::from_micros(20), "fct {fct}");
        assert!(fct < SimDuration::from_millis(2), "fct {fct}");
        // The message was segmented at the MTU: ceil(100000/1500) packets.
        assert_eq!(e.stats().packets_injected.get(), 67);
        assert_eq!(e.stats().packets_delivered.get(), 67);
        assert_eq!(e.stats().bytes_delivered.get(), 100_000);
        assert_eq!(e.stats().cells_dropped.get(), 0);
        // Completion accounting fully drained.
        assert_eq!(e.msg_remaining_of(id), 0);
    }

    #[test]
    fn bounded_flows_match_the_exact_table_sketched() {
        // The same message workload in bounded (sketch) mode must produce
        // exactly the stats the table-mode run collapses to via
        // `FlowStats::sketched()` — every sketch-book operation commutes,
        // so even though the two modes record finishes in different
        // bookkeeping, the end state is bit-identical.
        let offer = |e: &mut FabricEngine| {
            let n = e.num_fas() as u32;
            for src in 0..n {
                e.add_message(
                    src,
                    (src + 3) % n,
                    0,
                    0,
                    30_000 + src as u64 * 500,
                    SimTime::from_nanos(src as u64 * 113),
                );
            }
            e.run_until(SimTime::from_millis(10));
        };
        let mut table = small_engine(cfg_small());
        offer(&mut table);
        let mut cfg = cfg_small();
        cfg.bounded_flows = true;
        let mut bounded = small_engine(cfg);
        offer(&mut bounded);
        let b = &bounded.stats().flows;
        assert!(b.is_sketched());
        assert!(
            b.records().is_empty(),
            "bounded mode keeps no per-flow rows"
        );
        assert_eq!(*b, table.stats().flows.sketched());
        assert_eq!(b.completed(), b.len());
        // In-flight state fully reclaimed once every flow finished.
        match &bounded.msg_book {
            MsgBook::Stream {
                pending, active, ..
            } => {
                assert!(pending.is_empty() && active.is_empty());
            }
            MsgBook::Table { .. } => panic!("bounded_flows must use the stream book"),
        }
    }

    #[test]
    fn message_incast_completes_fairly_without_fabric_loss() {
        // §5.4 on the cell fabric: N-to-1 messages are absorbed in ingress
        // VOQs and drained by the egress credit scheduler round-robin, so
        // first ≈ last FCT and nothing is dropped inside the fabric.
        let mut e = small_engine(cfg_small());
        let n = e.num_fas() as u32;
        for src in 1..n {
            e.add_message(src, 0, 0, 0, 150_000, SimTime::ZERO);
        }
        e.run_until(SimTime::from_millis(10));
        let flows = &e.stats().flows;
        assert_eq!(flows.completed(), (n - 1) as usize);
        assert_eq!(e.stats().cells_dropped.get(), 0);
        assert_eq!(e.stats().packets_discarded.get(), 0);
        let first = flows.fct_quantile(0.0).unwrap().as_secs_f64();
        let last = flows.fct_quantile(1.0).unwrap().as_secs_f64();
        assert!(last / first < 1.5, "first {first} last {last}");
    }

    #[test]
    fn message_flows_are_deterministic() {
        let run = || {
            let mut e = small_engine(cfg_small());
            let n = e.num_fas() as u32;
            for src in 0..n {
                e.add_message(
                    src,
                    (src + 3) % n,
                    0,
                    0,
                    40_000 + src as u64 * 1000,
                    SimTime::from_nanos(src as u64 * 77),
                );
            }
            e.run_until(SimTime::from_millis(10));
            std::mem::replace(&mut e.stats.flows, FlowStats::new())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same-seed message runs diverged");
        assert_eq!(a.completed(), a.len());
    }

    #[test]
    fn discarded_message_packets_leave_the_flow_unfinished() {
        // Static-mode link failure blackholes a share of every burst, so
        // reassembly timeouts discard the packets: the flow must stay
        // unfinished (there is no retransmission) with undelivered bytes
        // still outstanding in its completion accounting.
        let mut e = small_engine(cfg_small());
        e.fail_link(e.fas[0].uplinks[0]);
        let id = e.add_message(0, 8, 0, 0, 60_000, SimTime::ZERO);
        e.run_until(SimTime::from_millis(10));
        assert!(
            e.stats().packets_discarded.get() > 0,
            "bursts must time out"
        );
        assert!(e.stats().flows.records()[id as usize].fct().is_none());
        assert!(e.msg_remaining_of(id) > 0, "bytes must stay undelivered");
    }

    #[test]
    fn low_latency_message_skips_the_credit_round_trip() {
        let fct_of = |ll: Option<u8>| {
            let mut cfg = cfg_small();
            cfg.low_latency_tc = ll;
            let mut e = small_engine(cfg);
            let id = e.add_message(0, 8, 0, ll.unwrap_or(0), 1_200, SimTime::ZERO);
            e.run_until(SimTime::from_millis(1));
            e.stats().flows.records()[id as usize]
                .fct()
                .expect("finished")
        };
        let normal = fct_of(None);
        let low_lat = fct_of(Some(0));
        assert!(
            low_lat + SimDuration::from_nanos(1_500) < normal,
            "low-latency {low_lat} vs normal {normal}"
        );
    }

    #[test]
    fn failed_link_direction_receives_zero_cells() {
        // Regression for the reach → sprayer plumbing: once the protocol
        // excludes a dead uplink, the spray permutation must shrink to the
        // eligible set — the dead direction sees **zero** new cells (they
        // would be counted in cells_dropped at push time otherwise).
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        cfg.reach_miss_threshold = 3;
        let mut e = small_engine(cfg);
        e.run_until(SimTime::from_micros(100));
        let link = e.fas[0].uplinks[0];
        let from_end = e.topo.link(link).end_of(e.fas[0].node);
        e.fail_link(link);
        e.run_until(SimTime::from_micros(300));
        assert!(!e.fas[0].reach.port_up(0), "uplink must be excluded");
        let dropped_before = e.stats().cells_dropped.get();
        let t0 = e.now();
        for i in 0..200u64 {
            e.inject(t0 + SimDuration::from_nanos(i * 500), 0, 8, 0, 0, 2000);
        }
        e.run_until(t0 + SimDuration::from_millis(5));
        assert_eq!(e.stats().packets_delivered.get(), 200);
        assert_eq!(
            e.stats().cells_dropped.get(),
            dropped_before,
            "cells were still routed at the failed direction"
        );
        assert_eq!(e.dir_depth(link, from_end), 0);
        // The cached sprayer rebuilt against the shrunken eligible set.
        let (_, sprayer) = &e.fas[0].sprayers[&8];
        assert_eq!(sprayer.width(), e.fas[0].uplinks.len() - 1);
        assert!(!sprayer.links().contains(&0), "dead port 0 still eligible");
    }

    #[test]
    fn link_admin_ops_are_idempotent_noops() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        let mut e = small_engine(cfg);
        e.run_until(SimTime::from_micros(50));
        let link = e.fas[0].uplinks[0];
        assert!(e.link_up(link));
        // Restoring a never-failed link is a no-op: nothing is stamped.
        e.restore_link(link);
        assert_eq!(e.stats().last_link_event_ps, 0);
        e.fail_link(link);
        assert!(!e.link_up(link));
        let stamp = e.stats().last_link_event_ps;
        assert_eq!(stamp, e.now().as_ps());
        let dropped = e.stats().cells_dropped.get();
        // Failing an already-failed link changes nothing further, even
        // after time passes.
        e.run_for(SimDuration::from_micros(10));
        e.fail_link(link);
        assert_eq!(e.stats().last_link_event_ps, stamp);
        assert_eq!(e.stats().cells_dropped.get(), dropped);
        e.restore_link(link);
        assert!(e.link_up(link));
        assert!(e.stats().last_link_event_ps > stamp);
    }

    #[test]
    fn churn_metrics_bracket_loss_and_convergence() {
        let mut cfg = cfg_small();
        cfg.reach_interval = Some(SimDuration::from_micros(10));
        cfg.reach_miss_threshold = 3;
        let mut e = small_engine(cfg);
        e.run_until(SimTime::from_micros(200));
        assert!(
            e.stats().loss_window().is_none(),
            "a pristine run records no loss window"
        );
        let link = e.fas[0].uplinks[0];
        e.fail_link(link);
        let t0 = e.now();
        for i in 0..50u64 {
            e.inject(t0 + SimDuration::from_nanos(i * 500), 0, 8, 0, 0, 2000);
        }
        e.run_until(SimTime::from_millis(2));
        e.restore_link(link);
        e.run_until(SimTime::from_millis(4));
        let s = e.stats();
        let w = s
            .loss_window()
            .expect("spraying at a not-yet-excluded dead link loses cells");
        assert!(s.first_loss_ps >= t0.as_ps(), "no loss before the failure");
        // Losses stop once the protocol excludes the dead direction:
        // 3 missed 10µs intervals plus margin.
        assert!(
            w <= SimDuration::from_micros(100),
            "loss window {w} outlived the exclusion bound"
        );
        // Re-admission after restore needs the good streak (3 adverts at
        // 10µs), so the last table change trails the restore by a couple
        // of intervals — never more than a handful.
        let conv = s.convergence_time().expect("tables change after restore");
        assert!(
            conv >= SimDuration::from_micros(10) && conv <= SimDuration::from_micros(100),
            "convergence time {conv} outside the revive-streak bound"
        );
    }

    #[test]
    fn ev_stays_small() {
        // The dispatch path moves events through bucket sorts and batch
        // drains; the slab/boxing layout keeps them to ≤ 24 bytes (3
        // words). This is a budget, not an exact pin, so a legitimate new
        // variant has headroom before the assert trips.
        assert!(
            std::mem::size_of::<Ev>() <= 24,
            "Ev grew to {} bytes — keep large payloads out-of-line",
            std::mem::size_of::<Ev>()
        );
    }
}
