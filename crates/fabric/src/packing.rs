//! Packet packing (§3.4) — chopping a credit-worth burst into cells.
//!
//! "When a VOQ receives a credit to send packets, it chops the packets in
//! the queue into cells while treating the entire burst of data as a unit.
//! As a consequence, a cell may include multiple packets or multiple
//! packet fragments. Packet packing is feasible only within the same VOQ."
//!
//! Packing guarantees that "only a very small fraction of the cells are
//! smaller than the maximum cell size" (§4.2) — exactly one potentially
//! short cell per burst: the tail.

use crate::cell::{Burst, BurstId, Cell, Packet};
use stardust_sim::SimTime;

/// Result of packing one burst: the burst record plus per-cell wire sizes.
#[derive(Debug)]
pub struct PackedBurst {
    /// The burst record (packets, cell count, timestamps).
    pub burst: Burst,
    /// Wire bytes of each cell (header + payload share).
    pub cell_sizes: Vec<u16>,
}

/// Pack `packets` (one credit grant from a single VOQ) into cells of at
/// most `cell_bytes` on the wire, `header_bytes` of which are overhead.
///
/// Without packing (`packed = false`) every packet is chopped
/// independently and each packet's tail cell is padded to the full cell
/// size on the wire — the paper's "non-packed cells" strawman of §6.1.1,
/// which wastes up to ~50% of throughput for sizes just above a cell.
pub fn pack_burst(
    id: BurstId,
    packets: Vec<Packet>,
    cell_bytes: u16,
    header_bytes: u16,
    packed: bool,
    now: SimTime,
) -> PackedBurst {
    assert!(!packets.is_empty(), "cannot pack an empty burst");
    let payload_per_cell = (cell_bytes - header_bytes) as u64;
    let total: u64 = packets.iter().map(|p| p.bytes as u64).sum();

    let mut cell_sizes = Vec::new();
    if packed {
        // One byte stream: ceil(total / payload) cells, only the tail short.
        let full = total / payload_per_cell;
        let tail = total % payload_per_cell;
        for _ in 0..full {
            cell_sizes.push(cell_bytes);
        }
        if tail > 0 {
            cell_sizes.push((tail + header_bytes as u64) as u16);
        }
    } else {
        // Per-packet chopping with padded tails: every cell occupies the
        // full wire size regardless of how much payload it carries.
        for p in &packets {
            let n = (p.bytes as u64).div_ceil(payload_per_cell);
            for _ in 0..n {
                cell_sizes.push(cell_bytes);
            }
        }
    }

    let (src_fa, dst_fa, dst_port, tc) = {
        let p = &packets[0];
        (p.src_fa, p.dst_fa, p.dst_port, p.tc)
    };
    debug_assert!(
        packets
            .iter()
            .all(|p| p.dst_fa == dst_fa && p.dst_port == dst_port && p.tc == tc),
        "packing across VOQs is not allowed (§3.4)"
    );

    PackedBurst {
        burst: Burst {
            id,
            src_fa,
            dst_fa,
            dst_port,
            tc,
            packets,
            n_cells: cell_sizes.len() as u16,
            received: 0,
            packed_at: now,
        },
        cell_sizes,
    }
}

impl PackedBurst {
    /// Materialize cell `seq` for transmission.
    pub fn cell(&self, seq: u16, sent_at: SimTime) -> Cell {
        Cell {
            src_fa: self.burst.src_fa,
            dst_fa: self.burst.dst_fa,
            burst: self.burst.id,
            seq,
            wire_bytes: self.cell_sizes[seq as usize],
            fci: false,
            sent_at,
        }
    }

    /// Total bytes this burst occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.cell_sizes.iter().map(|&s| s as u64).sum()
    }

    /// Packing efficiency: payload bytes ÷ wire bytes.
    pub fn efficiency(&self) -> f64 {
        self.burst.payload_bytes() as f64 / self.wire_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{PacketId, NO_FLOW};

    fn pkt(bytes: u32) -> Packet {
        Packet {
            id: PacketId(0),
            src_fa: 0,
            dst_fa: 1,
            dst_port: 0,
            tc: 0,
            bytes,
            flow: NO_FLOW,
            injected_at: SimTime::ZERO,
        }
    }

    fn pack(sizes: &[u32], packed: bool) -> PackedBurst {
        pack_burst(
            BurstId(1),
            sizes.iter().map(|&s| pkt(s)).collect(),
            256,
            8,
            packed,
            SimTime::ZERO,
        )
    }

    #[test]
    fn packed_burst_has_one_short_tail_at_most() {
        let pb = pack(&[1000, 1000, 1000, 1000], true); // 4000B / 248
        assert_eq!(pb.burst.n_cells as usize, pb.cell_sizes.len());
        let short = pb.cell_sizes.iter().filter(|&&s| s < 256).count();
        assert!(short <= 1);
        // ceil(4000/248) = 17 cells.
        assert_eq!(pb.burst.n_cells, 17);
    }

    #[test]
    fn packed_carries_exact_payload() {
        let pb = pack(&[999, 1, 57, 1500], true);
        let payload: u64 = pb.cell_sizes.iter().map(|&s| (s - 8) as u64).sum();
        assert_eq!(payload, 999 + 1 + 57 + 1500);
    }

    #[test]
    fn aligned_burst_has_no_tail() {
        // 248 × 4 bytes exactly.
        let pb = pack(&[496, 496], true);
        assert!(pb.cell_sizes.iter().all(|&s| s == 256));
        assert_eq!(pb.burst.n_cells, 4);
    }

    #[test]
    fn nonpacked_wastes_on_unaligned_packets() {
        // §3.4: "sending packets that are just one byte bigger than a cell
        // size can lead to 50% waste of throughput."
        let pb = pack(&[249, 249, 249, 249], false);
        // Each 249B packet needs 2 padded cells → 8 cells of 256B wire.
        assert_eq!(pb.burst.n_cells, 8);
        assert!(pb.efficiency() < 0.50);
        let packed = pack(&[249, 249, 249, 249], true);
        assert!(packed.efficiency() > 0.93);
        assert_eq!(packed.burst.n_cells, 5); // ceil(996/248)
    }

    #[test]
    fn single_tiny_packet() {
        let pb = pack(&[1], true);
        assert_eq!(pb.burst.n_cells, 1);
        assert_eq!(pb.cell_sizes[0], 9); // 1 payload + 8 header
    }

    #[test]
    fn cells_materialize_with_metadata() {
        let pb = pack(&[500], true);
        let c = pb.cell(0, SimTime::from_nanos(5));
        assert_eq!(c.burst, BurstId(1));
        assert_eq!(c.seq, 0);
        assert_eq!(c.wire_bytes, 256);
        assert!(!c.fci);
        // 500 B = 2 full cells (2×248) + 4 B tail ⇒ 3 cells, tail 4+8 B.
        assert_eq!(pb.burst.n_cells, 3);
        let tail = pb.cell(pb.burst.n_cells - 1, SimTime::ZERO);
        assert_eq!(tail.wire_bytes as u32, 500 - 2 * 248 + 8);
    }

    #[test]
    fn efficiency_approaches_payload_fraction_for_big_bursts() {
        let pb = pack(&[4096, 4096], true);
        assert!((pb.efficiency() - 248.0 / 256.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty burst")]
    fn empty_burst_panics() {
        pack_burst(BurstId(0), vec![], 256, 8, true, SimTime::ZERO);
    }
}
