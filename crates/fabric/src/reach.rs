//! The self-healing reachability protocol (§4.2, §5.8–§5.10, Appendix E).
//!
//! "The forwarding table is automatically maintained by hardware
//! exchanging special reachability control messages, where each device
//! advertises itself to all directly connected network-fabric devices.
//! The reachability messages are sent periodically. If no reachability
//! messages are received on a link periodically, it is considered failed."
//!
//! The advertisement protocol is direction-agnostic so it works on any
//! topology with a [`stardust_topo::RoutePlan`], not just a folded Clos:
//!
//! * An FA advertises itself on every port; an FE advertises the union
//!   of everything it heard (over all its ports) on every port.
//! * The *receiver* filters each advertisement through the route plan's
//!   candidate destination set for the direction the advertisement
//!   traveled, so only loop-free next hops ever enter a table. On a
//!   folded Clos this reduces exactly to the classic up-ad/down-ad
//!   split (up links learn the spine-side total reach, down links learn
//!   the subtree below).
//!
//! This module holds the per-device table state; the engine delivers the
//! messages and drives the periodic ticks.

use stardust_sim::SimTime;

/// Per-port reachability record.
#[derive(Debug, Clone)]
pub struct PortReach {
    /// Administratively/physically up (failed links stop advertising).
    pub up: bool,
    /// Sorted FA indices last advertised on this port.
    pub fas: Vec<u32>,
    /// When the last advertisement arrived.
    pub last_heard: SimTime,
    /// Consecutive good messages since last declared down (a link is
    /// "declared valid only after the number of good reachability cells
    /// received crosses a threshold", §5.10).
    pub good_streak: u32,
}

impl Default for PortReach {
    fn default() -> Self {
        PortReach {
            up: true,
            fas: Vec::new(),
            last_heard: SimTime::ZERO,
            good_streak: 0,
        }
    }
}

/// Reachability table of one device (FA over its uplinks, FE over all its
/// ports).
#[derive(Debug, Clone)]
pub struct ReachTable {
    ports: Vec<PortReach>,
    /// Table generation; bumped whenever eligibility may have changed so
    /// cached sprayers can be invalidated.
    pub generation: u64,
}

impl ReachTable {
    /// A table over `n` ports, initially up with empty advertisements.
    pub fn new(n: usize) -> Self {
        ReachTable {
            ports: vec![PortReach::default(); n],
            generation: 0,
        }
    }

    /// Seed a port's advertised set without bumping the generation (used
    /// for static-table mode and initial convergence shortcuts).
    pub fn seed(&mut self, port: usize, fas: Vec<u32>) {
        debug_assert!(fas.windows(2).all(|w| w[0] < w[1]), "must be sorted");
        self.ports[port].fas = fas;
    }

    /// Record an advertisement received on `port`. Returns `true` if the
    /// eligibility view changed (set differs or link revived).
    pub fn on_advert(
        &mut self,
        port: usize,
        fas: &[u32],
        now: SimTime,
        revive_streak: u32,
    ) -> bool {
        let p = &mut self.ports[port];
        p.last_heard = now;
        let mut changed = false;
        if !p.up {
            p.good_streak += 1;
            if p.good_streak >= revive_streak {
                p.up = true;
                changed = true;
            }
        }
        if p.fas != fas {
            p.fas = fas.to_vec();
            p.fas.sort_unstable();
            p.fas.dedup();
            changed = true;
        }
        if changed {
            self.generation += 1;
        }
        changed
    }

    /// A sender marked its link faulty (§5.10: "If the error rate on a
    /// link crosses a threshold, the link marks itself as faulty on
    /// reachability cells, and is excluded from cell forwarding").
    /// Returns `true` if the port was newly taken down.
    pub fn mark_faulty(&mut self, port: usize, now: SimTime) -> bool {
        let p = &mut self.ports[port];
        p.last_heard = now;
        p.good_streak = 0;
        if p.up {
            p.up = false;
            self.generation += 1;
            true
        } else {
            false
        }
    }

    /// Expire ports not heard from within `deadline` (now − th·interval).
    /// Returns `true` if any port was newly declared down.
    pub fn expire(&mut self, deadline: SimTime) -> bool {
        let mut changed = false;
        for p in &mut self.ports {
            if p.up && p.last_heard < deadline {
                p.up = false;
                p.good_streak = 0;
                changed = true;
            }
        }
        if changed {
            self.generation += 1;
        }
        changed
    }

    /// Ports currently eligible for destination FA `dst` (up and
    /// advertising it).
    pub fn eligible(&self, dst: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.eligible_into(dst, &mut out);
        out
    }

    /// [`Self::eligible`] into a caller-owned buffer — the hot spray path
    /// rebuilds spray sets on every generation bump, so the engine reuses
    /// one scratch `Vec` instead of allocating per rebuild.
    pub fn eligible_into(&self, dst: u32, out: &mut Vec<u32>) {
        out.clear();
        for (i, p) in self.ports.iter().enumerate() {
            if p.up && p.fas.binary_search(&dst).is_ok() {
                out.push(i as u32);
            }
        }
    }

    /// Union of the advertised sets over a subset of ports (what this
    /// device advertises onward).
    pub fn union_over(&self, ports: impl Iterator<Item = usize>) -> Vec<u32> {
        let mut acc = Vec::new();
        self.union_over_into(ports, &mut acc);
        acc
    }

    /// [`Self::union_over`] into a caller-owned buffer (same rationale as
    /// [`Self::eligible_into`]: called per device per reach tick).
    pub fn union_over_into(&self, ports: impl Iterator<Item = usize>, out: &mut Vec<u32>) {
        out.clear();
        for i in ports {
            let p = &self.ports[i];
            if p.up {
                out.extend_from_slice(&p.fas);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Is `port` currently considered up?
    pub fn port_up(&self, port: usize) -> bool {
        self.ports[port].up
    }

    /// Read-only view of the per-port records (state extraction for the
    /// model checker's canonical hash).
    pub fn ports(&self) -> &[PortReach] {
        &self.ports
    }

    /// Number of ports tracked.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True if no ports are tracked.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_sim::SimDuration;

    #[test]
    fn advert_updates_and_bumps_generation() {
        let mut t = ReachTable::new(2);
        let g0 = t.generation;
        assert!(t.on_advert(0, &[3, 1, 2], SimTime::from_micros(1), 3));
        assert!(t.generation > g0);
        assert_eq!(t.eligible(2), vec![0]);
        // Same set again: no change.
        assert!(!t.on_advert(0, &[1, 2, 3], SimTime::from_micros(2), 3));
    }

    #[test]
    fn eligibility_across_ports() {
        let mut t = ReachTable::new(3);
        t.on_advert(0, &[1, 2], SimTime::ZERO, 3);
        t.on_advert(1, &[2, 3], SimTime::ZERO, 3);
        t.on_advert(2, &[2], SimTime::ZERO, 3);
        assert_eq!(t.eligible(2), vec![0, 1, 2]);
        assert_eq!(t.eligible(1), vec![0]);
        assert!(t.eligible(9).is_empty());
    }

    #[test]
    fn expiry_marks_down_and_eligibility_shrinks() {
        let mut t = ReachTable::new(2);
        t.on_advert(0, &[1], SimTime::from_micros(10), 3);
        t.on_advert(1, &[1], SimTime::from_micros(30), 3);
        // Deadline after port 0's last message but before port 1's.
        assert!(t.expire(SimTime::from_micros(20)));
        assert!(!t.port_up(0));
        assert!(t.port_up(1));
        assert_eq!(t.eligible(1), vec![1]);
        // Idempotent.
        assert!(!t.expire(SimTime::from_micros(20)));
    }

    #[test]
    fn revival_needs_good_streak() {
        // §5.10: "A link is declared valid only after the number of good
        // reachability cells received crosses a threshold."
        let mut t = ReachTable::new(1);
        t.on_advert(0, &[1], SimTime::from_micros(1), 3);
        t.expire(SimTime::from_micros(100));
        assert!(!t.port_up(0));
        let base = SimTime::from_micros(200);
        assert!(!t.port_up(0));
        t.on_advert(0, &[1], base, 3);
        assert!(!t.port_up(0), "one good message is not enough");
        t.on_advert(0, &[1], base + SimDuration::from_micros(10), 3);
        assert!(!t.port_up(0));
        t.on_advert(0, &[1], base + SimDuration::from_micros(20), 3);
        assert!(t.port_up(0), "third good message revives");
        assert_eq!(t.eligible(1), vec![0]);
    }

    #[test]
    fn union_over_skips_down_ports() {
        let mut t = ReachTable::new(3);
        t.on_advert(0, &[1, 2], SimTime::from_micros(50), 3);
        t.on_advert(1, &[3], SimTime::from_micros(50), 3);
        t.on_advert(2, &[4], SimTime::from_micros(1), 3);
        t.expire(SimTime::from_micros(25)); // port 2 dies
        assert_eq!(t.union_over(0..3), vec![1, 2, 3]);
    }

    #[test]
    fn faulty_marking_takes_port_down_and_resets_streak() {
        let mut t = ReachTable::new(1);
        t.on_advert(0, &[1], SimTime::from_micros(1), 3);
        assert!(t.port_up(0));
        assert!(t.mark_faulty(0, SimTime::from_micros(2)));
        assert!(!t.port_up(0));
        assert!(!t.mark_faulty(0, SimTime::from_micros(3)), "idempotent");
        // Recovery still requires the full good streak.
        let b = SimTime::from_micros(10);
        t.on_advert(0, &[1], b, 3);
        t.on_advert(0, &[1], b + SimDuration::from_micros(1), 3);
        assert!(!t.port_up(0));
        t.on_advert(0, &[1], b + SimDuration::from_micros(2), 3);
        assert!(t.port_up(0));
    }

    #[test]
    fn seed_does_not_bump_generation() {
        let mut t = ReachTable::new(1);
        let g = t.generation;
        t.seed(0, vec![1, 2, 3]);
        assert_eq!(t.generation, g);
        assert_eq!(t.eligible(2), vec![0]);
    }
}
