//! In-crate smoke tests for the sharded engine (the full conformance
//! suite lives in the workspace `tests/shard_conformance.rs`).

use crate::config::FabricConfig;
use crate::engine::FabricEngine;
use crate::shard::{ExecMode, ShardedFabricEngine};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn cfg() -> FabricConfig {
    FabricConfig {
        host_ports: 2,
        host_port_bps: stardust_sim::units::gbps(40),
        ctrl_latency: SimDuration::from_micros(1),
        ..FabricConfig::default()
    }
}

fn drive_seq() -> FabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = FabricEngine::new(tt.topo, cfg());
    let n = e.num_fas() as u32;
    for src in 0..n {
        e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
        e.add_message(
            src,
            (src + 3) % n,
            1,
            1,
            30_000,
            SimTime::from_nanos(src as u64 * 97),
        );
    }
    e.run_until(SimTime::from_millis(3));
    e
}

fn drive_sharded(shards: u32, mode: ExecMode) -> ShardedFabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = ShardedFabricEngine::new(tt.topo, cfg(), shards);
    e.set_exec_mode(mode);
    let n = e.num_fas() as u32;
    for src in 0..n {
        e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
        e.add_message(
            src,
            (src + 3) % n,
            1,
            1,
            30_000,
            SimTime::from_nanos(src as u64 * 97),
        );
    }
    e.run_until(SimTime::from_millis(3));
    e
}

#[test]
fn sharded_runs_bit_identical_to_sequential_smoke() {
    let seq = drive_seq();
    assert!(seq.stats().packets_delivered.get() > 0);
    assert_eq!(seq.stats().flows.completed(), 16);
    for shards in [1u32, 2, 4] {
        let sh = drive_sharded(shards, ExecMode::Threads);
        assert_eq!(
            seq.stats(),
            &sh.stats(),
            "{shards}-shard run diverged from sequential"
        );
    }
}

#[test]
fn inline_and_threaded_execution_agree() {
    let a = drive_sharded(4, ExecMode::Threads);
    let b = drive_sharded(4, ExecMode::Inline);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.events_executed(), b.events_executed());
    assert_eq!(a.now(), b.now());
}

#[test]
fn sharded_run_for_advances_by_full_duration() {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = ShardedFabricEngine::new(tt.topo, cfg(), 2);
    e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
    e.run_for(SimDuration::from_micros(100));
    assert_eq!(e.now(), SimTime::from_micros(100));
    e.run_for(SimDuration::from_micros(100));
    assert_eq!(e.now(), SimTime::from_micros(200));
    assert_eq!(e.stats().packets_delivered.get(), 1);
}
