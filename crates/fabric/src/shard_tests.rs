//! In-crate smoke tests for the sharded engine (the full conformance
//! suite lives in the workspace `tests/shard_conformance.rs`).

use crate::config::FabricConfig;
use crate::engine::FabricEngine;
use crate::shard::{ExecMode, ShardedFabricEngine};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn cfg() -> FabricConfig {
    FabricConfig {
        host_ports: 2,
        host_port_bps: stardust_sim::units::gbps(40),
        ctrl_latency: SimDuration::from_micros(1),
        ..FabricConfig::default()
    }
}

fn drive_seq() -> FabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = FabricEngine::new(tt.topo, cfg());
    let n = e.num_fas() as u32;
    for src in 0..n {
        e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
        e.add_message(
            src,
            (src + 3) % n,
            1,
            1,
            30_000,
            SimTime::from_nanos(src as u64 * 97),
        );
    }
    e.run_until(SimTime::from_millis(3));
    e
}

fn drive_sharded(shards: u32, mode: ExecMode) -> ShardedFabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = ShardedFabricEngine::new(tt.topo, cfg(), shards);
    e.set_exec_mode(mode);
    let n = e.num_fas() as u32;
    for src in 0..n {
        e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
        e.add_message(
            src,
            (src + 3) % n,
            1,
            1,
            30_000,
            SimTime::from_nanos(src as u64 * 97),
        );
    }
    e.run_until(SimTime::from_millis(3));
    e
}

#[test]
fn sharded_runs_bit_identical_to_sequential_smoke() {
    let seq = drive_seq();
    assert!(seq.stats().packets_delivered.get() > 0);
    assert_eq!(seq.stats().flows.completed(), 16);
    for shards in [1u32, 2, 4] {
        let sh = drive_sharded(shards, ExecMode::Threads);
        assert_eq!(
            seq.stats(),
            &sh.stats(),
            "{shards}-shard run diverged from sequential"
        );
    }
}

#[test]
fn inline_and_threaded_execution_agree() {
    let a = drive_sharded(4, ExecMode::Threads);
    let b = drive_sharded(4, ExecMode::Inline);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.events_executed(), b.events_executed());
    assert_eq!(a.now(), b.now());
}

#[test]
fn thread_count_never_changes_results() {
    // 4 shards multiplexed over 1, 2 and 3 driving threads: window
    // bounds are pure functions of the reported event times, so the
    // thread count must be invisible in the stats, the event count and
    // the committed clock.
    let full = drive_sharded(4, ExecMode::Threads);
    for threads in [1u32, 2, 3] {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut e = ShardedFabricEngine::new(tt.topo, cfg(), 4);
        e.set_threads(threads);
        assert_eq!(e.num_threads(), threads);
        let n = e.num_fas() as u32;
        for src in 0..n {
            e.inject(SimTime::ZERO, src, (src + 5) % n, 0, 0, 4000);
            e.add_message(
                src,
                (src + 3) % n,
                1,
                1,
                30_000,
                SimTime::from_nanos(src as u64 * 97),
            );
        }
        e.run_until(SimTime::from_millis(3));
        assert_eq!(full.stats(), e.stats(), "{threads} threads diverged");
        assert_eq!(full.events_executed(), e.events_executed());
        assert_eq!(full.now(), e.now());
    }
}

#[test]
fn non_uniform_matrix_runs_bit_identical_on_dragonfly() {
    // The zoo dragonfly at 4 shards has a genuinely non-uniform
    // lookahead matrix (straddled groups: 25 ns near pairs, wider far
    // pairs) — this pins the matrix-windowed threaded path against the
    // sequential engine on exactly the topology class the matrix was
    // built for.
    use stardust_topo::{DragonflyParams, TopologyBuilder};
    let built = DragonflyParams::zoo().build_fabric();
    let c = cfg();
    let drive = |e: &mut dyn FnMut(SimTime, u32, u32)| {
        for src in 0..20u32 {
            e(SimTime::from_nanos(src as u64 * 131), src, (src + 7) % 20);
        }
    };
    let mut seq: FabricEngine =
        FabricEngine::with_plan(built.topo.clone(), c.clone(), built.plan.clone());
    drive(&mut |at, s, d| {
        seq.add_message(s, d, 0, 0, 20_000, at);
    });
    seq.run_until(SimTime::from_millis(2));
    let mut sh: ShardedFabricEngine =
        ShardedFabricEngine::with_plan(built.topo.clone(), c.clone(), built.plan.clone(), 4);
    let m = &sh.partition().matrix;
    assert!(
        m.max_cross_bound() > m.min_bound().unwrap(),
        "test premise: matrix must be non-uniform"
    );
    drive(&mut |at, s, d| {
        sh.add_message(s, d, 0, 0, 20_000, at);
    });
    sh.run_until(SimTime::from_millis(2));
    assert_eq!(seq.stats(), &sh.stats(), "matrix-windowed run diverged");
}

#[test]
fn sharded_run_for_advances_by_full_duration() {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = ShardedFabricEngine::new(tt.topo, cfg(), 2);
    e.inject(SimTime::ZERO, 0, 8, 0, 0, 1500);
    e.run_for(SimDuration::from_micros(100));
    assert_eq!(e.now(), SimTime::from_micros(100));
    e.run_for(SimDuration::from_micros(100));
    assert_eq!(e.now(), SimTime::from_micros(200));
    assert_eq!(e.stats().packets_delivered.get(), 1);
}
