//! Dynamic cell forwarding — spraying cells over all eligible links.
//!
//! §5.3: "each packet is segmented to fixed size cells that are
//! distributed in a round robin manner across all links leading to the
//! destination port. ... the round robin arbiter traverses the Fabric
//! Element links in a random permutation order, that is replaced every
//! few rounds. Thus, the probability of a persistent synchronization is
//! negligible."

use stardust_sim::DetRng;

/// Round-robin arbiter over a periodically re-shuffled permutation of
/// eligible link indices.
#[derive(Debug, Clone)]
pub struct Sprayer {
    perm: Vec<u32>,
    ptr: usize,
    rounds_until_shuffle: u32,
    rounds_per_shuffle: u32,
    rng: DetRng,
}

impl Sprayer {
    /// Create a sprayer over the given eligible links. `rounds_per_shuffle`
    /// full round-robin rounds pass between permutation refreshes.
    pub fn new(links: Vec<u32>, rounds_per_shuffle: u32, mut rng: DetRng) -> Self {
        assert!(!links.is_empty(), "sprayer needs at least one link");
        assert!(rounds_per_shuffle >= 1);
        let mut perm = links;
        rng.shuffle(&mut perm);
        Sprayer {
            perm,
            ptr: 0,
            rounds_until_shuffle: rounds_per_shuffle,
            rounds_per_shuffle,
            rng,
        }
    }

    /// The next link to send a cell on.
    // Deliberately named like `Iterator::next`; the sprayer is an infinite
    // round-robin source, not an `Iterator` (it never returns `None`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let link = self.perm[self.ptr];
        self.ptr += 1;
        if self.ptr == self.perm.len() {
            self.ptr = 0;
            self.rounds_until_shuffle -= 1;
            if self.rounds_until_shuffle == 0 {
                self.rng.shuffle(&mut self.perm);
                self.rounds_until_shuffle = self.rounds_per_shuffle;
            }
        }
        link
    }

    /// Number of eligible links.
    pub fn width(&self) -> usize {
        self.perm.len()
    }

    /// Replace the eligible set (reachability change / link failure).
    /// Restarts the rotation — the paper's tables are rebuilt on failures.
    pub fn set_links(&mut self, links: Vec<u32>) {
        self.set_links_from(&links);
    }

    /// [`Self::set_links`] from a borrowed slice, reusing the permutation
    /// buffer's capacity (the engine rebuilds spray sets from a shared
    /// scratch buffer on every reachability generation bump).
    pub fn set_links_from(&mut self, links: &[u32]) {
        assert!(!links.is_empty(), "sprayer needs at least one link");
        self.perm.clear();
        self.perm.extend_from_slice(links);
        self.rng.shuffle(&mut self.perm);
        self.ptr = 0;
        self.rounds_until_shuffle = self.rounds_per_shuffle;
    }

    /// Current eligible links (unordered view).
    pub fn links(&self) -> &[u32] {
        &self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::from_label(42, "spray-test")
    }

    #[test]
    fn covers_all_links_each_round() {
        let mut s = Sprayer::new((0..8).collect(), 4, rng());
        for round in 0..10 {
            let mut seen: Vec<u32> = (0..8).map(|_| s.next()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..8).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn perfect_balance_over_many_cells() {
        // §5.3: "the same amount of data is sent down each link."
        let mut s = Sprayer::new((0..16).collect(), 4, rng());
        let mut counts = [0u32; 16];
        let n = 16 * 1000;
        for _ in 0..n {
            counts[s.next() as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 1000);
        }
    }

    #[test]
    fn permutation_changes_after_configured_rounds() {
        let mut s = Sprayer::new((0..32).collect(), 2, rng());
        let round1: Vec<u32> = (0..32).map(|_| s.next()).collect();
        let round2: Vec<u32> = (0..32).map(|_| s.next()).collect();
        // Rounds within a shuffle period are identical...
        assert_eq!(round1, round2);
        let round3: Vec<u32> = (0..32).map(|_| s.next()).collect();
        // ...and differ across a refresh (w.h.p. for 32 links).
        assert_ne!(round2, round3);
    }

    #[test]
    fn single_link_degenerates_to_constant() {
        let mut s = Sprayer::new(vec![5], 4, rng());
        for _ in 0..10 {
            assert_eq!(s.next(), 5);
        }
    }

    #[test]
    fn set_links_replaces_eligible_set() {
        let mut s = Sprayer::new((0..4).collect(), 4, rng());
        s.set_links(vec![7, 9]);
        assert_eq!(s.width(), 2);
        let mut seen: Vec<u32> = (0..2).map(|_| s.next()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_links_panics() {
        Sprayer::new(vec![], 4, rng());
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u32> = {
            let mut s = Sprayer::new((0..8).collect(), 2, rng());
            (0..64).map(|_| s.next()).collect()
        };
        let b: Vec<u32> = {
            let mut s = Sprayer::new((0..8).collect(), 2, rng());
            (0..64).map(|_| s.next()).collect()
        };
        assert_eq!(a, b);
    }
}
