//! The egress credit scheduler (§3.3, §4.1).
//!
//! Each host-facing port on a Fabric Adapter runs a scheduler that knows
//! about every non-empty VOQ (anywhere in the network) heading to it, and
//! paces credits so that "the total rate of credits matches the egress
//! port's rate" — actually slightly above it (2–3% speedup) to keep the
//! egress buffer busy, and slightly below the fabric speedup to avoid
//! congestion. QoS is "typically a combination of round-robin, strict
//! priority and weighted among VOQs of different Traffic Classes"; we
//! implement strict priority across classes with round-robin within a
//! class (the §6.3 experiments use plain round-robin "intended to show
//! fairness").
//!
//! Two feedback signals modulate the pace:
//! * **FCI** (§4.2): congested Fabric Elements piggyback a bit on cells;
//!   the destination FA multiplicatively throttles its credit rate and
//!   recovers additively.
//! * **Egress backpressure** (§4.1): "when the egress buffer is close to
//!   full, the scheduler stops sending credits to the VOQs and resumes as
//!   packets are drained."

use crate::config::SchedPolicy;
use stardust_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// A VOQ as the egress scheduler sees it: its source FA and traffic class
/// (the destination port is implicit — one scheduler per port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedVoq {
    /// Source Fabric Adapter index.
    pub src_fa: u32,
    /// Traffic class.
    pub tc: u8,
}

/// Per-port credit scheduler state.
#[derive(Debug, Clone)]
pub struct PortScheduler {
    /// Credit size in bytes.
    credit_bytes: u64,
    /// Base inter-credit gap at full (speedup-included) rate, picoseconds.
    base_interval_ps: f64,
    /// Round-robin ring per traffic class (index 0 = strict highest).
    rings: Vec<VecDeque<u32>>,
    /// Outstanding requested-minus-granted bytes per VOQ. A VOQ is in a
    /// ring iff its pending entry exists.
    // det-lint: allow(unordered-iter, keyed access only; grant order is driven by the rings, never by this map)
    pending: HashMap<SchedVoq, i64>,
    /// Egress-buffer backpressure (§4.1).
    paused: bool,
    /// Whether a CreditTick event is currently scheduled.
    pub timer_armed: bool,
    /// FCI throttle factor in (0, 1].
    throttle: f64,
    fci_decrease: f64,
    fci_recover: f64,
    fci_min: f64,
    fci_hold: SimDuration,
    last_fci: SimTime,
    /// Total credits granted (diagnostics).
    pub credits_granted: u64,
    /// Cross-class arbitration policy.
    policy: SchedPolicy,
    /// WRR state: remaining grants for the class under service this cycle.
    wrr_tc: usize,
    wrr_left: u32,
}

impl PortScheduler {
    /// Build a scheduler for a port of `port_bps` with the given credit
    /// size and speedup; FCI parameters as in
    /// [`crate::config::FabricConfig`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        port_bps: u64,
        credit_bytes: u64,
        speedup: f64,
        num_tcs: u8,
        fci_decrease: f64,
        fci_recover: f64,
        fci_min: f64,
        fci_hold: SimDuration,
    ) -> Self {
        Self::with_policy(
            port_bps,
            credit_bytes,
            speedup,
            num_tcs,
            fci_decrease,
            fci_recover,
            fci_min,
            fci_hold,
            SchedPolicy::Strict,
        )
    }

    /// As [`PortScheduler::new`] with an explicit cross-class policy.
    #[allow(clippy::too_many_arguments)]
    pub fn with_policy(
        port_bps: u64,
        credit_bytes: u64,
        speedup: f64,
        num_tcs: u8,
        fci_decrease: f64,
        fci_recover: f64,
        fci_min: f64,
        fci_hold: SimDuration,
        policy: SchedPolicy,
    ) -> Self {
        assert!(port_bps > 0 && credit_bytes > 0);
        let rate = port_bps as f64 * (1.0 + speedup);
        let base_interval_ps = credit_bytes as f64 * 8.0 * 1e12 / rate;
        PortScheduler {
            credit_bytes,
            base_interval_ps,
            rings: (0..num_tcs).map(|_| VecDeque::new()).collect(),
            pending: HashMap::new(),
            paused: false,
            timer_armed: false,
            throttle: 1.0,
            fci_decrease,
            fci_recover,
            fci_min,
            fci_hold,
            last_fci: SimTime::ZERO,
            credits_granted: 0,
            wrr_left: match &policy {
                SchedPolicy::Strict => 0,
                SchedPolicy::Wrr(w) => w[0],
            },
            wrr_tc: 0,
            policy,
        }
    }

    /// The credit size this scheduler grants.
    pub fn credit_bytes(&self) -> u64 {
        self.credit_bytes
    }

    /// Register `bytes` of demand from a VOQ (a request control message).
    /// Returns `true` if the scheduler went from idle to having work (the
    /// caller must arm the credit timer).
    pub fn request(&mut self, voq: SchedVoq, bytes: u64) -> bool {
        let had_work = self.has_work();
        match self.pending.get_mut(&voq) {
            Some(p) => *p += bytes as i64,
            None => {
                self.pending.insert(voq, bytes as i64);
                self.rings[voq.tc as usize].push_back(voq.src_fa);
            }
        }
        !had_work && self.has_work() && !self.paused
    }

    /// Any VOQ with positive pending demand?
    pub fn has_work(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Is credit generation paused by egress backpressure?
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause credit generation (egress buffer above high watermark).
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Resume after drain below the low watermark. Returns `true` if the
    /// caller must re-arm the credit timer.
    pub fn resume(&mut self) -> bool {
        let was = self.paused;
        self.paused = false;
        was && self.has_work() && !self.timer_armed
    }

    /// Pick the next VOQ to credit: strict priority across traffic
    /// classes, round robin within. Decrements its pending demand by one
    /// credit and drops it from the ring when satisfied.
    pub fn next_grant(&mut self) -> Option<SchedVoq> {
        if self.paused {
            return None;
        }
        let order = self.class_order();
        for tc in order {
            while let Some(src) = self.rings[tc].pop_front() {
                let voq = SchedVoq {
                    src_fa: src,
                    tc: tc as u8,
                };
                let Some(p) = self.pending.get_mut(&voq) else {
                    continue; // stale ring entry
                };
                *p -= self.credit_bytes as i64;
                if *p > 0 {
                    self.rings[tc].push_back(src);
                } else {
                    self.pending.remove(&voq);
                }
                self.credits_granted += 1;
                self.consume_wrr(tc);
                return Some(voq);
            }
        }
        None
    }

    /// Class service order under the current policy. Strict priority is
    /// simply ascending; WRR starts from the class holding the current
    /// quantum and wraps (skipping empty classes consumes no quantum).
    fn class_order(&self) -> Vec<usize> {
        match &self.policy {
            SchedPolicy::Strict => (0..self.rings.len()).collect(),
            SchedPolicy::Wrr(_) => {
                let n = self.rings.len();
                (0..n).map(|i| (self.wrr_tc + i) % n).collect()
            }
        }
    }

    /// Account one WRR quantum against the class actually served.
    fn consume_wrr(&mut self, served_tc: usize) {
        if let SchedPolicy::Wrr(w) = &self.policy {
            if served_tc != self.wrr_tc {
                // A different class was served (the current one was empty):
                // move the pointer there and charge it.
                self.wrr_tc = served_tc;
                self.wrr_left = w[served_tc];
            }
            self.wrr_left -= 1;
            if self.wrr_left == 0 {
                self.wrr_tc = (self.wrr_tc + 1) % w.len();
                self.wrr_left = w[self.wrr_tc];
            }
        }
    }

    /// Current credit interval under the FCI throttle.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_ps((self.base_interval_ps / self.throttle).round() as u64)
    }

    /// An FCI-marked cell arrived for this port: multiplicative decrease,
    /// rate-limited to once per `fci_hold`.
    pub fn on_fci(&mut self, now: SimTime) {
        if now.saturating_since(self.last_fci) < self.fci_hold && self.last_fci != SimTime::ZERO {
            return;
        }
        self.last_fci = now;
        self.throttle = (self.throttle * self.fci_decrease).max(self.fci_min);
    }

    /// Additive recovery, applied once per credit tick.
    pub fn recover(&mut self) {
        self.throttle = (self.throttle + self.fci_recover).min(1.0);
    }

    /// Current throttle factor (diagnostics).
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Number of distinct VOQs with pending demand.
    pub fn active_voqs(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(num_tcs: u8) -> PortScheduler {
        PortScheduler::new(
            50_000_000_000,
            4096,
            0.03,
            num_tcs,
            0.95,
            0.002,
            0.5,
            SimDuration::from_micros(2),
        )
    }

    #[test]
    fn interval_reflects_speedup() {
        let s = sched(1);
        // 4096B at 50G×1.03 = 636.19ns.
        let ns = s.interval().as_nanos_f64();
        assert!((ns - 4096.0 * 8.0 / 51.5).abs() < 0.5, "{ns}");
    }

    #[test]
    fn request_arms_once() {
        let mut s = sched(1);
        assert!(s.request(SchedVoq { src_fa: 1, tc: 0 }, 1000));
        assert!(!s.request(SchedVoq { src_fa: 2, tc: 0 }, 1000));
        assert!(s.has_work());
    }

    #[test]
    fn round_robin_within_class() {
        let mut s = sched(1);
        for fa in 0..3 {
            s.request(SchedVoq { src_fa: fa, tc: 0 }, 100_000);
        }
        let order: Vec<u32> = (0..6).map(|_| s.next_grant().unwrap().src_fa).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn strict_priority_across_classes() {
        let mut s = sched(2);
        s.request(SchedVoq { src_fa: 1, tc: 1 }, 100_000);
        s.request(SchedVoq { src_fa: 2, tc: 0 }, 10_000);
        // tc 0 drains first even though it arrived second.
        assert_eq!(s.next_grant().unwrap(), SchedVoq { src_fa: 2, tc: 0 });
        assert_eq!(s.next_grant().unwrap(), SchedVoq { src_fa: 2, tc: 0 });
        assert_eq!(s.next_grant().unwrap(), SchedVoq { src_fa: 2, tc: 0 });
        // 10_000 − 3×4096 < 0: tc0 satisfied, now tc1.
        assert_eq!(s.next_grant().unwrap().tc, 1);
    }

    #[test]
    fn grants_stop_when_pending_satisfied() {
        let mut s = sched(1);
        s.request(SchedVoq { src_fa: 7, tc: 0 }, 5000);
        assert!(s.next_grant().is_some()); // 5000-4096 = 904 left
        assert!(s.next_grant().is_some()); // -3192 → removed
        assert!(s.next_grant().is_none());
        assert!(!s.has_work());
        assert_eq!(s.credits_granted, 2);
    }

    #[test]
    fn pause_blocks_grants_and_resume_rearms() {
        let mut s = sched(1);
        s.request(SchedVoq { src_fa: 1, tc: 0 }, 100_000);
        s.pause();
        assert!(s.next_grant().is_none());
        // resume wants the timer re-armed (it was never armed here).
        assert!(s.resume());
        assert!(s.next_grant().is_some());
    }

    #[test]
    fn fci_throttles_and_recovers() {
        let mut s = sched(1);
        let base = s.interval();
        s.on_fci(SimTime::from_micros(10));
        assert!(s.throttle() < 1.0);
        assert!(s.interval() > base);
        // Held: a second FCI within the hold window is ignored.
        let t1 = s.throttle();
        s.on_fci(SimTime::from_micros(11));
        assert_eq!(s.throttle(), t1);
        // After the hold window it bites again.
        s.on_fci(SimTime::from_micros(13));
        assert!(s.throttle() < t1);
        // Recovery crawls back to 1.
        for _ in 0..1000 {
            s.recover();
        }
        assert_eq!(s.throttle(), 1.0);
        assert_eq!(s.interval(), base);
    }

    #[test]
    fn fci_floor_holds() {
        let mut s = sched(1);
        for i in 0..10_000u64 {
            s.on_fci(SimTime::from_micros(10 * (i + 1)));
        }
        assert!(s.throttle() >= 0.5);
    }

    #[test]
    fn wrr_policy_shares_by_weight() {
        let mut s = PortScheduler::with_policy(
            50_000_000_000,
            4096,
            0.03,
            2,
            0.95,
            0.002,
            0.5,
            SimDuration::from_micros(2),
            SchedPolicy::Wrr(vec![3, 1]),
        );
        s.request(SchedVoq { src_fa: 1, tc: 0 }, 100_000_000);
        s.request(SchedVoq { src_fa: 2, tc: 1 }, 100_000_000);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[s.next_grant().unwrap().tc as usize] += 1;
        }
        assert_eq!(counts[0], 300, "3:1 split, got {counts:?}");
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn wrr_idle_class_yields_its_quantum() {
        let mut s = PortScheduler::with_policy(
            50_000_000_000,
            4096,
            0.03,
            2,
            0.95,
            0.002,
            0.5,
            SimDuration::from_micros(2),
            SchedPolicy::Wrr(vec![3, 1]),
        );
        // Only the low class has demand: it gets everything.
        s.request(SchedVoq { src_fa: 2, tc: 1 }, 10_000_000);
        for _ in 0..100 {
            assert_eq!(s.next_grant().unwrap().tc, 1);
        }
    }

    #[test]
    fn fairness_two_sources_equal_credits() {
        // §5.4: "The destination's egress scheduler distributes bandwidth
        // (credits) to incast sources evenly".
        let mut s = sched(1);
        s.request(SchedVoq { src_fa: 1, tc: 0 }, 10_000_000);
        s.request(SchedVoq { src_fa: 2, tc: 0 }, 10_000_000);
        let mut c = [0u32; 3];
        for _ in 0..1000 {
            c[s.next_grant().unwrap().src_fa as usize] += 1;
        }
        assert_eq!(c[1], 500);
        assert_eq!(c[2], 500);
    }
}
