//! Topology-zoo property tests: the reachability protocol must keep
//! spray sets free of failed directions and reconverge after repair on
//! *every* fabric the route-plan layer supports — folded Clos and flat
//! alike. Each kind runs a seeded fail/restore schedule and is checked
//! against a pristine engine's converged tables at the end.

use stardust_sim::{DetRng, SimDuration, SimTime};
use stardust_topo::{
    Built, DragonflyParams, ExpanderParams, LinkId, SingleTierParams, SpaceShuffleParams,
    ThreeTierParams, TopologyBuilder, TwoTierParams,
};

use crate::config::FabricConfig;
use crate::engine::FabricEngine;

const SEED: u64 = 7;

fn zoo() -> Vec<(&'static str, Built)> {
    vec![
        ("two_tier", TwoTierParams::paper_scaled(16).build_fabric()),
        ("three_tier", ThreeTierParams::small().build_fabric()),
        ("single_tier", SingleTierParams::paper_6_1().build_fabric()),
        ("dragonfly", DragonflyParams::zoo().build_fabric()),
        (
            "space_shuffle",
            SpaceShuffleParams::zoo(SEED).build_fabric(),
        ),
        ("expander", ExpanderParams::zoo(SEED).build_fabric()),
    ]
}

fn dynamic_cfg() -> FabricConfig {
    FabricConfig {
        seed: SEED,
        reach_interval: Some(SimDuration::from_micros(10)),
        reach_miss_threshold: 3,
        ..FabricConfig::default()
    }
}

/// Every eligible out-direction of every device, against the set of
/// directions belonging to currently-failed links.
fn assert_no_failed_dirs(name: &str, e: &FabricEngine, failed: &[LinkId]) {
    let bad: Vec<u32> = failed.iter().flat_map(|l| [l.0 * 2, l.0 * 2 + 1]).collect();
    for (dev, per_dst) in e.eligible_dir_snapshot().iter().enumerate() {
        for (dst, dirs) in per_dst.iter().enumerate() {
            for d in dirs {
                assert!(
                    !bad.contains(d),
                    "{name}: device {dev} still sprays dst {dst} over failed dir {d}"
                );
            }
        }
    }
}

/// After an arbitrary seeded fail/restore sequence, no table on any
/// topology kind points at an excluded direction, and once every link is
/// restored the tables reconverge to the pristine engine's exactly.
#[test]
fn fail_restore_never_leaves_stale_directions_on_any_topology() {
    for (name, built) in zoo() {
        let cfg = dynamic_cfg();
        let plan = built.plan.clone();
        let mut pristine: FabricEngine =
            FabricEngine::with_plan(built.topo.clone(), cfg.clone(), plan.clone());
        pristine.run_until(SimTime::from_micros(200));
        let reference = pristine.eligible_dir_snapshot();

        let mut e = FabricEngine::with_plan(built.topo.clone(), cfg, plan);
        e.run_until(SimTime::from_micros(200));
        assert_eq!(
            e.eligible_dir_snapshot(),
            reference,
            "{name}: converged dynamic tables must be reproducible"
        );

        let mut rng =
            DetRng::from_label(SEED, "zoo-fail-restore").split_u64(built.topo.num_links() as u64);
        let mut failed: Vec<LinkId> = Vec::new();
        for _round in 0..4 {
            // Fail one or two more links, or restore one, per round.
            for _ in 0..1 + rng.index(2) {
                let l = LinkId(rng.below(built.topo.num_links() as u64) as u32);
                if !failed.contains(&l) {
                    e.fail_link(l);
                    failed.push(l);
                }
            }
            if failed.len() > 1 && rng.chance(0.5) {
                let l = failed.remove(rng.index(failed.len()));
                e.restore_link(l);
            }
            // 3 missed 10µs intervals to detect + propagation margin.
            e.run_for(SimDuration::from_micros(300));
            assert_no_failed_dirs(name, &e, &failed);
        }

        for l in failed.drain(..) {
            e.restore_link(l);
        }
        e.run_for(SimDuration::from_micros(600));
        assert_eq!(
            e.eligible_dir_snapshot(),
            reference,
            "{name}: tables must reconverge to the pristine view after restore"
        );
    }
}

/// Static-table mode on the flat fabrics: seeded tables alone must route
/// all-pairs traffic losslessly (the plan's candidate sets are loop-free
/// and complete).
#[test]
fn static_plan_routes_all_pairs_on_flat_fabrics() {
    for (name, built) in zoo() {
        let mut e: FabricEngine = FabricEngine::with_plan(
            built.topo.clone(),
            FabricConfig::default(),
            built.plan.clone(),
        );
        let n = e.num_fas() as u32;
        let mut sent = 0u64;
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    e.inject(
                        SimTime::from_nanos(u64::from(src) * 40),
                        src,
                        dst,
                        0,
                        0,
                        1500,
                    );
                    sent += 1;
                }
            }
        }
        e.run_until(SimTime::from_millis(50));
        assert_eq!(
            e.stats().packets_delivered.get(),
            sent,
            "{name}: all-pairs packets must all arrive"
        );
        assert_eq!(e.stats().cells_dropped.get(), 0, "{name}: no drops");
    }
}
