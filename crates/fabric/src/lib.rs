//! # stardust-fabric — the paper's core contribution
//!
//! A faithful, event-driven implementation of the Stardust architecture
//! (§3–§5 of the paper):
//!
//! * [`cell`] — cells, bursts and packets: the fixed-size data units the
//!   Fabric Adapter chops credit-worth bursts into ([`cell::Cell`]).
//! * [`packing`] — packet packing (§3.4): a credit-worth of packets is
//!   treated as one unit and chopped into cells, so only burst tails are
//!   short.
//! * [`voq`] — virtual output queues (§3.3): per (destination Fabric
//!   Adapter, port, traffic class) ingress queues with credit-balance
//!   accounting.
//! * [`spray`] — dynamic cell forwarding (§3.2, §5.3): round-robin
//!   spraying over a periodically re-randomized permutation of the links
//!   that reach the destination.
//! * [`sched`] — the egress credit scheduler (§4.1): per-port credit
//!   pacing slightly above port rate, strict priority across traffic
//!   classes, round-robin within, FCI throttling, egress-buffer
//!   backpressure.
//! * [`reach`] — the self-healing reachability protocol (§4.2, §5.9):
//!   periodic hardware reachability messages, failure detection by missed
//!   updates, automatic table repair.
//! * [`engine`] — the discrete-event network engine tying Fabric Adapters
//!   and Fabric Elements together over a `stardust-topo` topology, with
//!   the measurement hooks behind Figure 9 and §6.
//!
//! The crate deliberately contains no Ethernet/push-fabric code — that
//! baseline lives in `stardust-baseline` so the two architectures can be
//! compared like-for-like from the benches.

pub mod cell;
pub mod config;
pub mod engine;
pub mod packing;
pub mod partition;
pub mod reach;
pub mod sched;
pub mod shard;
#[cfg(test)]
mod shard_tests;
pub mod spray;
pub mod voq;
#[cfg(test)]
mod zoo_tests;

pub use cell::{Burst, BurstId, Cell, Packet, PacketId};
pub use config::FabricConfig;
pub use engine::{EligibilitySnapshot, FabricEngine, FabricStats, HeapCoreFabricEngine};
pub use partition::Partition;
pub use shard::{ExecMode, ShardedFabricEngine};
pub use voq::VoqKey;
